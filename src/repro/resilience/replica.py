"""One shard's replica set: write fan-in, read spreading, failover, rebuild.

:class:`ReplicatedShard` owns N :class:`~repro.serving.node.ServingNode`
replicas holding identical copies of one hash-shard's data:

* **writes fan in**: every healthy replica applies every upsert/delete, in
  the same order, so any one of them can answer any read exactly.  A
  replica whose write attempt faults is *ejected* (marked down) rather
  than left behind silently — an ejected replica has provably missed
  writes and must rebuild before serving again.  After every fan-in the
  shard version-checks the survivors for divergence;
* **reads spread**: each query is served by one healthy replica, picked
  round-robin (throughput-first: consecutive queries alternate replicas)
  or by rendezvous hashing on the query's content signature
  (cache-first: the same query always lands on the same replica, so each
  replica's LRU holds a disjoint slice of the hot set).  A read that
  faults ejects the replica and *fails over* to the next healthy one —
  the caller sees the answer, not the fault;
* **recovery rebuilds**: a down replica re-enters by copying a healthy
  peer's members (exact: the rebuilt index answers bit-identically) or by
  loading a :mod:`repro.storage` snapshot, then re-joins the fan-in.

Faults are injected (never spontaneous) through an optional per-replica
:class:`~repro.resilience.faults.FaultPolicy`, consulted *before* the node
call — so a faulted write never half-applies, and killing a replica
between any two operations leaves the survivors exact.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

from repro.core.exceptions import (
    ReplicaDivergenceError,
    ReplicaUnavailableError,
    ResilienceError,
    ServingError,
)
from repro.core.multiset import Multiset, MultisetId, content_signature
from repro.mapreduce.partitioner import stable_hash
from repro.resilience.faults import FaultPolicy
from repro.serving.node import ServingNode
from repro.similarity.base import NominalSimilarityMeasure

#: Salt separating replica rendezvous ranking from the other hash users.
REPLICA_SALT = "resilience-replica"

#: The two read-spreading strategies.
ROUND_ROBIN = "round_robin"
RENDEZVOUS = "rendezvous"


class Replica:
    """One serving node plus its health state inside a replica set."""

    def __init__(self, node: ServingNode, *,
                 fault_policy: FaultPolicy | None = None) -> None:
        self.node = node
        self.fault_policy = fault_policy
        self.healthy = True
        #: Why the replica is down ("" while healthy).
        self.down_reason = ""
        #: The index version every fan-in leaves the replica at; a
        #: mismatch on the next check means an out-of-band write diverged
        #: this replica from its peers.
        self.expected_version = node.index.version
        #: Serializes calls into the node (serving structures are not
        #: thread-safe); distinct replicas proceed in parallel.
        self.lock = threading.Lock()
        self.reads_served = 0
        self.writes_applied = 0
        self.faults_seen = 0

    @property
    def name(self) -> str:
        return self.node.name

    def call(self, operation: str, function: Callable, *args):
        """Run one node call behind the fault policy, under the lock."""
        with self.lock:
            if self.fault_policy is not None:
                self.fault_policy.on_call(operation)
            return function(*args)

    def stats(self) -> dict[str, float]:
        merged: dict[str, float] = dict(self.node.stats())
        merged["healthy"] = self.healthy
        merged["reads_served"] = self.reads_served
        merged["writes_applied"] = self.writes_applied
        merged["faults_seen"] = self.faults_seen
        return merged

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else f"down ({self.down_reason})"
        return f"Replica({self.name!r}, {state}, members={len(self.node)})"


class ReplicatedShard:
    """N replicas of one shard behind write fan-in and read spreading."""

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 replication_factor: int = 2, *,
                 cache_capacity: int = 1024,
                 stop_word_frequency: int | None = None,
                 intern: bool = True,
                 name: str = "shard0",
                 read_strategy: str = ROUND_ROBIN,
                 fault_policies: Sequence[FaultPolicy | None] | None = None
                 ) -> None:
        if replication_factor < 1:
            raise ResilienceError(
                f"replication_factor must be >= 1, got {replication_factor}")
        if read_strategy not in (ROUND_ROBIN, RENDEZVOUS):
            raise ResilienceError(
                f"read_strategy must be {ROUND_ROBIN!r} or {RENDEZVOUS!r}, "
                f"got {read_strategy!r}")
        if fault_policies is not None \
                and len(fault_policies) != replication_factor:
            raise ResilienceError(
                f"need one fault policy slot per replica: got "
                f"{len(fault_policies)} for replication factor "
                f"{replication_factor}")
        self.name = name
        self.read_strategy = read_strategy
        self._node_settings = {
            "cache_capacity": cache_capacity,
            "stop_word_frequency": stop_word_frequency,
            "intern": intern,
        }
        self._measure_setting = measure
        self.replicas = [
            Replica(ServingNode(measure, cache_capacity=cache_capacity,
                                stop_word_frequency=stop_word_frequency,
                                intern=intern,
                                name=f"{name}/replica{index}"),
                    fault_policy=(fault_policies[index]
                                  if fault_policies else None))
            for index in range(replication_factor)
        ]
        self._next_read = 0
        self._pick_lock = threading.Lock()
        self.ejections = 0
        self.recoveries = 0
        self.failovers = 0

    @property
    def replication_factor(self) -> int:
        return len(self.replicas)

    @property
    def measure(self) -> NominalSimilarityMeasure:
        return self.replicas[0].node.measure

    @property
    def cache_capacity(self) -> int:
        """Per-replica LRU result-cache capacity."""
        return self._node_settings["cache_capacity"]

    def healthy_replicas(self) -> list[Replica]:
        """The replicas currently serving (fan-in targets, read candidates)."""
        return [replica for replica in self.replicas if replica.healthy]

    def num_healthy(self) -> int:
        return sum(1 for replica in self.replicas if replica.healthy)

    def _primary(self) -> Replica:
        """Any healthy replica (reads that must not spread: len, get)."""
        for replica in self.replicas:
            if replica.healthy:
                return replica
        raise ReplicaUnavailableError(
            f"shard {self.name}: all {self.replication_factor} replicas "
            "are down")

    def __len__(self) -> int:
        return len(self._primary().node)

    def __contains__(self, multiset_id: object) -> bool:
        return multiset_id in self._primary().node

    def get(self, multiset_id: MultisetId) -> Multiset | None:
        """The indexed multiset with this identifier, from any healthy replica."""
        return self._primary().node.index.get(multiset_id)

    # -- ejection / divergence -------------------------------------------------

    def _eject(self, replica: Replica, reason: str) -> None:
        if replica.healthy:
            replica.healthy = False
            replica.down_reason = reason
            replica.faults_seen += 1
            self.ejections += 1

    def check_divergence(self) -> None:
        """Verify the healthy replicas still agree; raise when they don't.

        Two checks: each replica's index version must equal what the last
        fan-in left it at (an out-of-band write to one replica is
        divergence by definition), and all healthy replicas must agree on
        the member count (a dropped or duplicated fan-in write).
        """
        sizes: dict[str, int] = {}
        for replica in self.healthy_replicas():
            if replica.node.index.version != replica.expected_version:
                raise ReplicaDivergenceError(
                    f"shard {self.name}: replica {replica.name} is at index "
                    f"version {replica.node.index.version}, expected "
                    f"{replica.expected_version} — it was written to "
                    "outside the fan-in path")
            sizes[replica.name] = len(replica.node)
        if len(set(sizes.values())) > 1:
            raise ReplicaDivergenceError(
                f"shard {self.name}: healthy replicas disagree on member "
                f"count: {sizes}")

    # -- writes (fan in to every healthy replica) ------------------------------

    def _fan_in(self, operation: str, function_name: str, *args) -> int:
        """Apply one write to every healthy replica; returns how many applied.

        A replica whose *injected fault* fires is ejected and skipped — the
        fault fires before the node mutates, so the ejected replica simply
        missed the write and will rebuild on recovery.  A deterministic
        :class:`ServingError` (duplicate add, missing delete) propagates
        unchanged: it would fail identically on every replica, and it fails
        *before* mutating — single-item writes are atomic and bulk batches
        are pre-validated by :meth:`bulk_load` — so the set stays
        consistent.  Should a :class:`ServingError` nevertheless fire after
        the node already mutated (the index version moved), the write
        half-applied: that replica no longer matches its peers and is
        ejected to rebuild rather than left healthy with diverged state.
        """
        applied = 0
        deterministic_failure: ServingError | None = None
        for replica in self.healthy_replicas():
            try:
                replica.call(operation, getattr(replica.node, function_name),
                             *args)
            except ServingError as error:
                if replica.node.index.version != replica.expected_version:
                    self._eject(replica, f"{operation} half-applied: {error}")
                deterministic_failure = error
                break
            except Exception as error:  # noqa: BLE001 — fault path
                self._eject(replica, f"{operation} failed: {error}")
                continue
            replica.writes_applied += 1
            replica.expected_version = replica.node.index.version
            applied += 1
        if deterministic_failure is not None:
            raise deterministic_failure
        if applied == 0:
            raise ReplicaUnavailableError(
                f"shard {self.name}: no healthy replica could apply "
                f"{operation} (all {self.replication_factor} down)")
        self.check_divergence()
        return applied

    def add(self, multiset: Multiset, replace: bool = False) -> None:
        """Fan one upsert in to every healthy replica."""
        self._fan_in("add", "add", multiset, replace)

    def remove(self, multiset_id: MultisetId) -> None:
        """Fan one delete in to every healthy replica."""
        self._fan_in("remove", "remove", multiset_id)

    def bulk_load(self, multisets: Iterable[Multiset],
                  replace: bool = False) -> int:
        """Fan a bulk load in; returns the count indexed (per replica).

        The batch is validated *before* any replica mutates: node bulk
        loads apply items incrementally, so a duplicate identifier rejected
        mid-batch would leave the first replica partially loaded while its
        peers got nothing.  Rejecting the batch up front keeps the fan-in
        all-or-nothing on every replica.
        """
        batch = list(multisets)
        if not replace:
            seen: set[MultisetId] = set()
            primary = self._primary()
            for multiset in batch:
                if multiset.id in seen:
                    raise ServingError(
                        f"bulk batch contains {multiset.id!r} twice; "
                        "load it once (or pass replace=True)")
                if multiset.id in primary.node:
                    raise ServingError(
                        f"multiset {multiset.id!r} is already indexed; "
                        "pass replace=True to overwrite")
                seen.add(multiset.id)
        self._fan_in("bulk_load", "bulk_load", batch, replace)
        return len(batch)

    # -- reads (spread over healthy replicas, failing over on faults) ----------

    def _read_candidates(self, request) -> list[Replica]:
        """Healthy replicas in preference order for one request."""
        healthy = self.healthy_replicas()
        if not healthy:
            return []
        if self.read_strategy == RENDEZVOUS and request is not None:
            signature = content_signature(request.query)
            return sorted(
                healthy,
                key=lambda replica: stable_hash(
                    (sorted(map(repr, signature)), replica.name),
                    salt=REPLICA_SALT),
                reverse=True)
        with self._pick_lock:
            start = self._next_read
            self._next_read += 1
        # Rotate over the *current* healthy list so a just-ejected replica
        # never absorbs a turn.
        return [healthy[(start + offset) % len(healthy)]
                for offset in range(len(healthy))]

    def _read(self, operation: str, function_name: str, *args, request=None):
        """Serve one read from the preferred replica, failing over on faults.

        Deterministic :class:`ServingError` failures propagate (they would
        recur on every replica — e.g. ``neighbours`` of an unindexed
        identifier); anything else ejects the replica and tries the next.
        """
        for replica in self._read_candidates(request):
            try:
                result = replica.call(operation,
                                      getattr(replica.node, function_name),
                                      *args)
            except ServingError:
                raise
            except Exception as error:  # noqa: BLE001 — fail over
                self._eject(replica, f"{operation} failed: {error}")
                self.failovers += 1
                continue
            replica.reads_served += 1
            return result
        raise ReplicaUnavailableError(
            f"shard {self.name}: no healthy replica left to serve "
            f"{operation} (all {self.replication_factor} down)")

    def query(self, request):
        """Answer one unified-API query from one healthy replica."""
        return self._read("query", "query", request, request=request)

    def batch(self, requests: Sequence) -> list:
        """Answer a request batch from one healthy replica.

        The whole batch goes to a single replica (it coalesces duplicate
        signatures internally); spreading happens across batches.
        """
        anchor = requests[0] if requests else None
        return self._read("batch", "batch", list(requests), request=anchor)

    # -- kill / recover --------------------------------------------------------

    def kill(self, replica_index: int, *, lose_state: bool = True) -> Replica:
        """Simulate a crash: mark the replica down, losing its state.

        With ``lose_state`` (the default) the node is replaced by an empty
        one, exactly as a process crash loses its memory — recovery *must*
        rebuild, so tests exercising :meth:`recover` prove the rebuild
        path rather than silently reusing surviving state.
        """
        try:
            replica = self.replicas[replica_index]
        except IndexError:
            raise ResilienceError(
                f"shard {self.name} has no replica {replica_index} "
                f"(replication factor {self.replication_factor})") from None
        self._eject(replica, "killed")
        if lose_state:
            replica.node = ServingNode(
                self._measure_setting, name=replica.node.name,
                **self._node_settings)
            replica.expected_version = 0
        if replica.fault_policy is not None:
            replica.fault_policy.crash()
        return replica

    def recover(self, replica_index: int, *, source=None) -> Replica:
        """Readmit a down replica, rebuilding its state exactly.

        ``source`` is a :mod:`repro.storage` database path (or open
        engine) written by :meth:`ServingNode.persist
        <repro.serving.node.ServingNode.persist>`; without one the replica
        copies a healthy peer's members (peer snapshot).  Either way the
        rebuilt replica answers every query bit-identically to its peers,
        which :meth:`check_divergence` re-verifies before readmission.
        """
        try:
            replica = self.replicas[replica_index]
        except IndexError:
            raise ResilienceError(
                f"shard {self.name} has no replica {replica_index} "
                f"(replication factor {self.replication_factor})") from None
        if replica.healthy:
            raise ResilienceError(
                f"shard {self.name}: replica {replica.name} is healthy; "
                "only down replicas recover")
        node = ServingNode(self._measure_setting, name=replica.node.name,
                           **self._node_settings)
        if source is not None:
            from repro.serving.index import SimilarityIndex

            node.index = SimilarityIndex.load(source)
        else:
            peer = self._primary()
            with peer.lock:
                members = [peer.node.index.get(multiset_id)
                           for multiset_id in peer.node.index.ids()]
            node.bulk_load(members)
        if replica.fault_policy is not None:
            replica.fault_policy.revive()
        replica.node = node
        replica.expected_version = node.index.version
        replica.healthy = True
        replica.down_reason = ""
        self.recoveries += 1
        self.check_divergence()
        return replica

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Shard-level resilience counters."""
        return {
            "replication_factor": self.replication_factor,
            "healthy_replicas": self.num_healthy(),
            "ejections": self.ejections,
            "recoveries": self.recoveries,
            "failovers": self.failovers,
        }

    def per_replica_stats(self) -> dict[str, dict[str, float]]:
        return {replica.name: replica.stats() for replica in self.replicas}

    def __repr__(self) -> str:
        return (f"ReplicatedShard(name={self.name!r}, "
                f"replicas={self.num_healthy()}/{self.replication_factor} "
                f"healthy, strategy={self.read_strategy!r})")
