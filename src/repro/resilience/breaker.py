"""A per-endpoint circuit breaker: closed → open → half-open → closed.

The breaker protects callers from wasting time (and the server from
wasting queue slots) on an endpoint that keeps failing: after
``failure_threshold`` consecutive failures the circuit *opens* and every
attempt is refused locally with :class:`CircuitOpenError` — carrying the
time until the breaker *half-opens* as its ``retry_after_seconds``.  In
the half-open state a bounded number of probe calls is let through; one
success closes the circuit again, one failure re-opens it for another
full reset window.

The statistics counters are deliberately lock-free: ``allow`` /
``record_*`` run on the wire client's hot path, and plain int attribute
updates are atomic enough under the GIL that the counters stay
monotonically correct — the worst a race can cost is a probe more than
``half_open_max_probes`` slipping through, which only means one extra
request against a recovering server.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.exceptions import CircuitOpenError, ResilienceError

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a monotonic-clock timer.

    Parameters
    ----------
    name:
        Label used in error messages and stats (the endpoint path, for the
        wire client's per-endpoint breakers).
    failure_threshold:
        Consecutive failures that open the circuit.
    reset_timeout_seconds:
        How long the circuit stays open before half-opening.
    half_open_max_probes:
        Calls allowed through while half-open (best-effort bound).
    clock:
        Injectable monotonic clock, so tests step time instead of sleeping.
    """

    def __init__(self, name: str = "", *, failure_threshold: int = 5,
                 reset_timeout_seconds: float = 1.0,
                 half_open_max_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout_seconds <= 0:
            raise ResilienceError(
                f"reset_timeout_seconds must be positive, "
                f"got {reset_timeout_seconds}")
        if half_open_max_probes < 1:
            raise ResilienceError(
                f"half_open_max_probes must be >= 1, "
                f"got {half_open_max_probes}")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_seconds = float(reset_timeout_seconds)
        self.half_open_max_probes = int(half_open_max_probes)
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_probes = 0
        self.calls_allowed = 0
        self.calls_refused = 0
        self.successes = 0
        self.failures = 0
        self.opens = 0

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed reset window."""
        if self._state == OPEN and self._remaining_open() <= 0:
            return HALF_OPEN
        return self._state

    def _remaining_open(self) -> float:
        return self.reset_timeout_seconds - (self._clock() - self._opened_at)

    def allow(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when refused."""
        if self._state == OPEN:
            remaining = self._remaining_open()
            if remaining > 0:
                self.calls_refused += 1
                raise CircuitOpenError(
                    f"circuit for {self.name or 'endpoint'} is open after "
                    f"{self._consecutive_failures} consecutive failures; "
                    f"half-opens in {remaining:.3f}s",
                    retry_after_seconds=max(remaining, 0.001))
            # Reset window elapsed: half-open and admit bounded probes.
            self._state = HALF_OPEN
            self._half_open_probes = 0
        if self._state == HALF_OPEN:
            if self._half_open_probes >= self.half_open_max_probes:
                self.calls_refused += 1
                raise CircuitOpenError(
                    f"circuit for {self.name or 'endpoint'} is half-open and "
                    f"its probe quota ({self.half_open_max_probes}) is in "
                    "flight",
                    retry_after_seconds=self.reset_timeout_seconds)
            self._half_open_probes += 1
        self.calls_allowed += 1

    def record_success(self) -> None:
        """A gated call succeeded: close the circuit."""
        self.successes += 1
        self._consecutive_failures = 0
        if self._state != CLOSED:
            self._state = CLOSED
            self._half_open_probes = 0

    def record_failure(self) -> None:
        """A gated call failed: count it; open on threshold or failed probe."""
        self.failures += 1
        self._consecutive_failures += 1
        if self._state == HALF_OPEN \
                or self._consecutive_failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()
            self._half_open_probes = 0
            self.opens += 1

    def stats(self) -> dict[str, float]:
        """Lock-free counters and the current state."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "calls_allowed": self.calls_allowed,
            "calls_refused": self.calls_refused,
            "successes": self.successes,
            "failures": self.failures,
            "opens": self.opens,
        }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
                f"failures={self._consecutive_failures}/"
                f"{self.failure_threshold})")
