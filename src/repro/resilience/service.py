"""The replicated fleet: hash-sharded replica sets behind the one query API.

:class:`ReplicatedSimilarityService` is the fault-tolerant drop-in for
:class:`~repro.serving.service.ShardedSimilarityService`: the same hash
routing (identical :func:`~repro.serving.service.shard_for` assignment,
so a replicated fleet and an unreplicated one partition any corpus
identically), the same unified query/batch/write surface, the same
persist/recover file format — plus N replicas per shard, write fan-in,
per-shard read spreading and failover, and kill/recover/health-check
plumbing for the chaos suite and the serving tier.

Exactness contract: whenever every shard keeps at least one healthy
replica, every query answer is bit-identical to the unreplicated
service's — replication changes who computes the answer, never the
answer.  The chaos suite asserts exactly that while killing and
recovering replicas mid-stream.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.core.exceptions import ResilienceError, ServingError
from repro.core.multiset import Multiset, MultisetId
from repro.resilience.replica import ROUND_ROBIN, Replica, ReplicatedShard
from repro.serving.api import (
    QueryMatch,
    QueryRequest,
    QueryResponse,
    finalize_matches,
)
from repro.serving.service import ShardedSimilarityService, shard_for
from repro.similarity.base import NominalSimilarityMeasure


class ReplicatedSimilarityService:
    """A fleet of replicated shards behind a single query API."""

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 num_shards: int = 4, *, replication_factor: int = 2,
                 cache_capacity: int = 1024,
                 stop_word_frequency: int | None = None,
                 intern: bool = True,
                 read_strategy: str = ROUND_ROBIN,
                 fault_policy_factory=None) -> None:
        """Build the fleet.

        ``fault_policy_factory`` is the chaos seam: a callable
        ``(shard_index, replica_index) -> FaultPolicy | None`` wiring an
        injection policy in front of each replica's node calls.
        """
        if num_shards < 1:
            raise ServingError(f"num_shards must be >= 1, got {num_shards}")
        self.shards = [
            ReplicatedShard(
                measure, replication_factor,
                cache_capacity=cache_capacity,
                stop_word_frequency=stop_word_frequency,
                intern=intern,
                name=f"shard{shard}",
                read_strategy=read_strategy,
                fault_policies=(
                    [fault_policy_factory(shard, replica)
                     for replica in range(replication_factor)]
                    if fault_policy_factory is not None else None))
            for shard in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        """Number of hash shards (each a replica set)."""
        return len(self.shards)

    @property
    def replication_factor(self) -> int:
        """Replicas per shard."""
        return self.shards[0].replication_factor

    @property
    def measure(self) -> NominalSimilarityMeasure:
        """The measure the fleet serves."""
        return self.shards[0].measure

    @property
    def read_strategy(self) -> str:
        """The read-spreading strategy every shard uses."""
        return self.shards[0].read_strategy

    @property
    def cache_capacity(self) -> int:
        """Per-replica LRU result-cache capacity."""
        return self.shards[0].cache_capacity

    def __len__(self) -> int:
        """Logical member count (each member counted once, not per replica)."""
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, multiset_id: object) -> bool:
        return any(multiset_id in shard for shard in self.shards)

    def shard_for(self, multiset_id: MultisetId) -> int:
        """The shard this identifier routes to (same hash as unreplicated)."""
        return shard_for(multiset_id, self.num_shards)

    # -- writes (routed to the owning shard, fanned into its replicas) ---------

    def add(self, multiset: Multiset, replace: bool = False) -> None:
        """Index a multiset on every healthy replica of its owning shard."""
        self.shards[self.shard_for(multiset.id)].add(multiset, replace=replace)

    def remove(self, multiset_id: MultisetId) -> None:
        """Drop a multiset from every healthy replica of its owning shard."""
        self.shards[self.shard_for(multiset_id)].remove(multiset_id)

    def bulk_load(self, multisets: Iterable[Multiset],
                  replace: bool = False) -> int:
        """Partition a collection over the shards; returns the count indexed."""
        per_shard: dict[int, list[Multiset]] = {}
        for multiset in multisets:
            per_shard.setdefault(self.shard_for(multiset.id), []).append(multiset)
        return sum(self.shards[shard].bulk_load(batch, replace=replace)
                   for shard, batch in per_shard.items())

    # -- queries (fan out to every shard, merge; replicas picked per shard) ----

    def query(self, request: QueryRequest) -> QueryResponse:
        """Answer one query across all shards, merged exactly.

        Identical merge discipline to the unreplicated service; within
        each shard the answering replica is picked by the read strategy.
        """
        merged: list[QueryMatch] = []
        for shard in self.shards:
            merged.extend(shard.query(request).matches)
        return QueryResponse(finalize_matches(merged, request.options),
                             request.options)

    def batch(self, requests: Sequence[QueryRequest]) -> list[QueryResponse]:
        """Execute a batch: one per-shard batch, merged per item."""
        per_shard = [shard.batch(requests) for shard in self.shards]
        return [QueryResponse(
                    finalize_matches(
                        [match for responses in per_shard
                         for match in responses[position].matches],
                        request.options),
                    request.options)
                for position, request in enumerate(requests)]

    def neighbours(self, multiset_id: MultisetId,
                   threshold: float) -> list[QueryMatch]:
        """Threshold partners of an indexed member, excluding itself."""
        member = self.shards[self.shard_for(multiset_id)].get(multiset_id)
        if member is None:
            raise ServingError(f"multiset {multiset_id!r} is not indexed")
        matches = self.query(QueryRequest.threshold(member, threshold)).matches
        return [match for match in matches
                if match.multiset_id != multiset_id]

    # -- fault plumbing --------------------------------------------------------

    def kill_replica(self, shard: int, replica: int, *,
                     lose_state: bool = True) -> Replica:
        """Crash one replica (chaos entry point); see :meth:`ReplicatedShard.kill
        <repro.resilience.replica.ReplicatedShard.kill>`."""
        return self._shard_at(shard).kill(replica, lose_state=lose_state)

    def recover_replica(self, shard: int, replica: int, *,
                        source=None) -> Replica:
        """Rebuild and readmit one down replica (peer snapshot or storage)."""
        return self._shard_at(shard).recover(replica, source=source)

    def _shard_at(self, shard: int) -> ReplicatedShard:
        if not 0 <= shard < self.num_shards:
            raise ResilienceError(
                f"no shard {shard} (fleet has {self.num_shards})")
        return self.shards[shard]

    def health_check(self, *, readmit: bool = True) -> dict:
        """Probe every replica; eject the broken, optionally readmit the down.

        The probe is a no-op node call through the replica's fault policy
        plus the shard's divergence version-check, so a crashed or
        diverged replica is ejected by observation rather than by the
        first failing query.  With ``readmit`` (the default), down
        replicas whose shard still has a healthy peer are rebuilt and
        readmitted — the self-healing loop the serving tier runs
        periodically.
        """
        report: dict[str, list[str]] = {"healthy": [], "ejected": [],
                                        "readmitted": [], "down": []}
        for shard_index, shard in enumerate(self.shards):
            for replica_index, replica in enumerate(shard.replicas):
                if replica.healthy:
                    try:
                        replica.call("health", len, replica.node)
                        if replica.node.index.version \
                                != replica.expected_version:
                            raise ResilienceError(
                                "index version diverged from the fan-in "
                                "history")
                    except Exception as error:  # noqa: BLE001 — probe
                        shard._eject(replica, f"health probe failed: {error}")
                        report["ejected"].append(replica.name)
                    else:
                        report["healthy"].append(replica.name)
                    continue
                if readmit and shard.num_healthy() >= 1:
                    try:
                        shard.recover(replica_index)
                    except Exception:  # noqa: BLE001 — stay down, retry later
                        report["down"].append(replica.name)
                    else:
                        report["readmitted"].append(replica.name)
                else:
                    report["down"].append(replica.name)
        return report

    # -- persistence (format-compatible with the unreplicated service) ---------

    def persist(self, directory: str | os.PathLike) -> list[str]:
        """Save one healthy replica per shard into ``directory``.

        Writes exactly the ``shard*.sqlite`` layout of
        :meth:`ShardedSimilarityService.persist
        <repro.serving.service.ShardedSimilarityService.persist>` — the
        replicas are exact copies, so persisting any healthy one persists
        the shard; either service class can recover the directory.
        """
        os.makedirs(directory, exist_ok=True)
        paths: list[str] = []
        for index, shard in enumerate(self.shards):
            path = os.path.join(os.fspath(directory),
                                f"shard{index:04d}.sqlite")
            primary = shard._primary()
            with primary.lock:
                primary.node.persist(path)
            paths.append(path)
        return paths

    @classmethod
    def recover(cls, directory: str | os.PathLike, *,
                replication_factor: int = 2,
                cache_capacity: int = 1024,
                read_strategy: str = ROUND_ROBIN
                ) -> "ReplicatedSimilarityService":
        """Restore a replicated fleet from a persisted shard directory.

        Accepts directories written by either service class's
        ``persist``; every replica of a shard loads the same file, so the
        rebuilt replica set starts consistent (and divergence-checked).
        """
        from repro.serving.index import SimilarityIndex

        shard_files = sorted(
            entry for entry in os.listdir(directory)
            if entry.startswith("shard") and entry.endswith(".sqlite"))
        if not shard_files:
            raise ServingError(
                f"no shard*.sqlite files found in {os.fspath(directory)!r}; "
                "was the directory written by persist()?")
        paths = [os.path.join(os.fspath(directory), entry)
                 for entry in shard_files]
        first = SimilarityIndex.load(paths[0])
        service = cls(first.measure, len(paths),
                      replication_factor=replication_factor,
                      cache_capacity=cache_capacity,
                      stop_word_frequency=first.stop_word_frequency,
                      read_strategy=read_strategy)
        for shard, path in zip(service.shards, paths):
            for replica in shard.replicas:
                replica.node.index = SimilarityIndex.load(path)
                replica.expected_version = replica.node.index.version
            shard.check_divergence()
        return service

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Fleet totals: one healthy replica per shard summed, plus resilience.

        Per-shard serving counters come from one healthy replica each (the
        replicas are copies; summing all of them would overcount the fleet
        by the replication factor), merged with the fan-in/failover
        counters that only exist in the replicated tier.
        """
        merged: dict[str, float] = {}
        for shard in self.shards:
            for stat, value in shard._primary().node.stats().items():
                merged[stat] = merged.get(stat, 0) + value
        merged.pop("index_version", None)
        merged["num_shards"] = self.num_shards
        merged["replication_factor"] = self.replication_factor
        lookups = merged.get("cache/hits", 0) + merged.get("cache/misses", 0)
        merged["cache/hit_rate"] = (merged.get("cache/hits", 0) / lookups
                                    if lookups else 0.0)
        for shard in self.shards:
            for stat, value in shard.stats().items():
                if stat == "replication_factor":
                    continue
                merged[f"resilience/{stat}"] = \
                    merged.get(f"resilience/{stat}", 0) + value
        return merged

    def per_node_stats(self) -> dict[str, dict[str, float]]:
        """Per-replica statistics keyed by ``shardN/replicaM`` name."""
        merged: dict[str, dict[str, float]] = {}
        for shard in self.shards:
            merged.update(shard.per_replica_stats())
        return merged

    def replica_health(self) -> dict[str, dict]:
        """The health document of every replica (the ``/admin/replicas`` body)."""
        return {
            shard.name: {
                "replication_factor": shard.replication_factor,
                "healthy": shard.num_healthy(),
                "replicas": {
                    replica.name: {
                        "healthy": replica.healthy,
                        "down_reason": replica.down_reason,
                        "members": len(replica.node),
                        "reads_served": replica.reads_served,
                        "writes_applied": replica.writes_applied,
                    }
                    for replica in shard.replicas
                },
            }
            for shard in self.shards
        }

    def snapshot(self) -> dict:
        """One health/statistics document for the whole fleet."""
        return {
            "measure": self.measure.name,
            "num_shards": self.num_shards,
            "replication_factor": self.replication_factor,
            "indexed_multisets": len(self),
            "totals": self.stats(),
            "per_node": self.per_node_stats(),
            "replica_health": self.replica_health(),
        }

    def to_unreplicated(self) -> ShardedSimilarityService:
        """An unreplicated view over fresh copies of the fleet's state.

        Built through the persistence-free peer-copy path: each shard's
        primary members are bulk-loaded into a plain
        :class:`ShardedSimilarityService` with the same shard count, so
        the result answers every query identically (the parity oracle the
        tests compare against, pointed the other way).
        """
        service = ShardedSimilarityService(
            self.measure, self.num_shards,
            stop_word_frequency=self.shards[0].replicas[0]
            .node.index.stop_word_frequency)
        for index, shard in enumerate(self.shards):
            primary = shard._primary()
            with primary.lock:
                members = [primary.node.index.get(multiset_id)
                           for multiset_id in primary.node.index.ids()]
            service.nodes[index].bulk_load(members)
        return service

    def __repr__(self) -> str:
        healthy = sum(shard.num_healthy() for shard in self.shards)
        total = sum(shard.replication_factor for shard in self.shards)
        return (f"ReplicatedSimilarityService(measure={self.measure.name!r}, "
                f"shards={self.num_shards}, "
                f"replicas={healthy}/{total} healthy, "
                f"multisets={len(self)})")
