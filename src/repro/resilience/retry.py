"""Retry budgets: deadlines and capped exponential backoff with jitter.

:class:`RetryPolicy` is the declarative half (how many attempts, how the
backoff grows, the overall deadline); :class:`RetrySchedule` is its
per-call instantiation, owning the seeded jitter RNG and the deadline
clock.  The wire client builds one schedule per logical request, so a
request that retries three times draws three jittered backoffs from one
deterministic stream — reproducible under test, decorrelated in a fleet.

Server backoff hints (``Retry-After`` / ``retry_after_seconds``) are
honored by *raising* the computed backoff to the hint, never lowering it:
the server knows when it expects to have capacity again, and hammering it
earlier than that only deepens the brownout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.exceptions import DeadlineExceededError, ResilienceError


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries transient failures.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    call plus at most two retries.  ``deadline_seconds`` bounds the whole
    logical request including backoff sleeps; ``None`` means attempts are
    the only budget.
    """

    max_attempts: int = 3
    base_backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    #: Jitter fraction: each backoff is scaled by 1 ± jitter (seeded).
    jitter: float = 0.1
    deadline_seconds: float | None = None
    #: Seed of the jitter stream (None: derive from the default RNG).
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ResilienceError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1:
            raise ResilienceError(
                f"backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}")
        if not 0 <= self.jitter < 1:
            raise ResilienceError(
                f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ResilienceError(
                f"deadline_seconds must be positive when set, "
                f"got {self.deadline_seconds}")

    def schedule(self, rng, *, clock=time.monotonic) -> "RetrySchedule":
        """One per-request schedule drawing jitter from ``rng``."""
        return RetrySchedule(self, rng, clock=clock)


class RetrySchedule:
    """The mutable per-request state of one :class:`RetryPolicy`.

    Tracks the attempt count and the deadline, computes jittered backoffs,
    and refuses to sleep past the deadline — a retry the deadline cannot
    accommodate surfaces :class:`DeadlineExceededError` immediately
    instead of sleeping first and failing later.
    """

    def __init__(self, policy: RetryPolicy, rng, *,
                 clock=time.monotonic) -> None:
        self.policy = policy
        self._rng = rng
        self._clock = clock
        self._started = clock()
        self.attempts = 0

    def remaining_deadline(self) -> float | None:
        """Seconds left before the deadline (``None``: no deadline)."""
        if self.policy.deadline_seconds is None:
            return None
        return self.policy.deadline_seconds - (self._clock() - self._started)

    def check_deadline(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` when the deadline is spent."""
        remaining = self.remaining_deadline()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.policy.deadline_seconds:.3f}s "
                "deadline",
                deadline_seconds=self.policy.deadline_seconds)

    def start_attempt(self) -> int:
        """Account one attempt; raises when the budget is already spent."""
        self.check_deadline()
        if self.attempts >= self.policy.max_attempts:
            raise ResilienceError(
                f"retry budget exhausted after {self.attempts} attempts")
        self.attempts += 1
        return self.attempts

    @property
    def attempts_left(self) -> int:
        return self.policy.max_attempts - self.attempts

    def backoff_seconds(self, *, server_hint: float | None = None) -> float:
        """The jittered backoff before the next attempt.

        Exponential in the attempt count, capped at
        ``max_backoff_seconds``, scaled by the seeded jitter — then raised
        (never lowered) to an explicit server hint.
        """
        policy = self.policy
        exponent = max(self.attempts - 1, 0)
        backoff = min(
            policy.base_backoff_seconds * policy.backoff_multiplier ** exponent,
            policy.max_backoff_seconds)
        if policy.jitter > 0:
            backoff *= 1 + policy.jitter * (2 * self._rng.random() - 1)
        if server_hint is not None:
            backoff = max(backoff, float(server_hint))
        return backoff

    def sleep_before_retry(self, *, server_hint: float | None = None) -> float:
        """Sleep the backoff; raises instead when the deadline can't fit it.

        Returns the seconds actually slept.
        """
        backoff = self.backoff_seconds(server_hint=server_hint)
        remaining = self.remaining_deadline()
        if remaining is not None and backoff >= remaining:
            raise DeadlineExceededError(
                f"retry backoff of {backoff:.3f}s does not fit in the "
                f"{remaining:.3f}s left of the "
                f"{self.policy.deadline_seconds:.3f}s deadline",
                deadline_seconds=self.policy.deadline_seconds,
                retry_after_seconds=backoff)
        if backoff > 0:
            time.sleep(backoff)
        return backoff
