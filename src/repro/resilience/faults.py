"""Seeded fault injection for replicas and wire calls.

A :class:`FaultPolicy` is a deterministic little chaos monkey: armed with a
seed and a set of probabilities, it decides before every intercepted call
whether to inject latency, raise an artificial failure, simulate a timeout,
or crash the target permanently (until revived).  The replica layer
(:mod:`repro.resilience.replica`) consults the policy before delegating to
its :class:`~repro.serving.node.ServingNode`, and the wire client
(:class:`~repro.server.client.SimilarityClient`) consults one before each
transport attempt — the same seam covers both "the node is slow/broken"
and "the network is slow/broken".

Faults fire *before* the protected call executes, so an injected failure
never leaves a replica half-mutated: a write that draws an error simply
never reached that replica, which is exactly the failure model the
recovery path (peer rebuild) is built for.

Determinism matters more than realism here: the chaos suite replays
Hypothesis-found failures, so the same seed and call sequence must inject
the same faults every run.
"""

from __future__ import annotations

import random
import threading
import time

from repro.core.exceptions import (
    DeadlineExceededError,
    InjectedFaultError,
    ReplicaUnavailableError,
    ResilienceError,
)


class FaultPolicy:
    """Decides, per intercepted call, which fault (if any) to inject.

    Parameters
    ----------
    seed:
        Seeds the private RNG; the injected fault sequence is a pure
        function of the seed and the call sequence.
    latency_seconds:
        Sleep injected before matched calls (models slow disks/networks;
        the sleep releases the GIL, so injected latency also makes replica
        parallelism measurable from threads).
    latency_probability:
        Fraction of matched calls that pay the latency.
    error_probability:
        Fraction of matched calls raising :class:`InjectedFaultError`.
    timeout_probability:
        Fraction of matched calls raising :class:`DeadlineExceededError`
        (models a call that gave up waiting rather than one that failed).
    crash_after_calls:
        When set, the policy counts matched calls and — once the count
        exceeds this — every further call raises
        :class:`ReplicaUnavailableError` until :meth:`revive` is called:
        the crash-on-nth-call discipline of the chaos suite.
    operations:
        Restrict injection to these operation names (``None`` = all).
        Unmatched operations still count nothing and never fault.
    """

    def __init__(self, *, seed: int = 0, latency_seconds: float = 0.0,
                 latency_probability: float = 1.0,
                 error_probability: float = 0.0,
                 timeout_probability: float = 0.0,
                 crash_after_calls: int | None = None,
                 operations: frozenset[str] | None = None) -> None:
        for name, value in (("latency_seconds", latency_seconds),
                            ("latency_probability", latency_probability),
                            ("error_probability", error_probability),
                            ("timeout_probability", timeout_probability)):
            if value < 0:
                raise ResilienceError(
                    f"{name} must be >= 0, got {value!r}")
        for name, value in (("latency_probability", latency_probability),
                            ("error_probability", error_probability),
                            ("timeout_probability", timeout_probability)):
            if value > 1:
                raise ResilienceError(
                    f"{name} must be <= 1, got {value!r}")
        if crash_after_calls is not None and crash_after_calls < 0:
            raise ResilienceError(
                f"crash_after_calls must be >= 0 when set, "
                f"got {crash_after_calls!r}")
        self.latency_seconds = float(latency_seconds)
        self.latency_probability = float(latency_probability)
        self.error_probability = float(error_probability)
        self.timeout_probability = float(timeout_probability)
        self.crash_after_calls = crash_after_calls
        self.operations = frozenset(operations) if operations else None
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.calls = 0
        self.injected_latency_calls = 0
        self.injected_errors = 0
        self.injected_timeouts = 0
        self._crashed = False

    @property
    def crashed(self) -> bool:
        """Whether the crash-on-nth-call trigger has fired (and not revived)."""
        return self._crashed

    def crash(self) -> None:
        """Crash the target immediately (every further call fails)."""
        self._crashed = True

    def revive(self) -> None:
        """Clear the crashed state (process restart).

        A fired crash-on-nth-call trigger is consumed: the revived target
        would otherwise re-crash on its very next call, making recovery
        untestable.
        """
        self._crashed = False
        if (self.crash_after_calls is not None
                and self.calls > self.crash_after_calls):
            self.crash_after_calls = None

    def on_call(self, operation: str) -> None:
        """Intercept one call: sleep, raise, or pass through.

        Raises before the protected call executes, so injected failures
        never leave the target half-mutated.
        """
        if self.operations is not None and operation not in self.operations:
            return
        with self._lock:
            self.calls += 1
            if (self.crash_after_calls is not None
                    and self.calls > self.crash_after_calls):
                self._crashed = True
            if self._crashed:
                raise ReplicaUnavailableError(
                    f"injected crash: {operation} call {self.calls} is past "
                    f"the crash-after-{self.crash_after_calls} trigger")
            draw = self._rng.random
            sleep_for = 0.0
            if (self.latency_seconds > 0
                    and draw() < self.latency_probability):
                self.injected_latency_calls += 1
                sleep_for = self.latency_seconds
            if self.error_probability > 0 and draw() < self.error_probability:
                self.injected_errors += 1
                raise InjectedFaultError(
                    f"injected failure on {operation} "
                    f"(call {self.calls})")
            if (self.timeout_probability > 0
                    and draw() < self.timeout_probability):
                self.injected_timeouts += 1
                raise DeadlineExceededError(
                    f"injected timeout on {operation} (call {self.calls})")
        # Sleep outside the lock: concurrent callers must overlap their
        # injected latency, not serialize on the policy.
        if sleep_for > 0:
            time.sleep(sleep_for)

    def stats(self) -> dict[str, float]:
        """Counters of what the policy has injected so far."""
        return {
            "calls": self.calls,
            "injected_latency_calls": self.injected_latency_calls,
            "injected_errors": self.injected_errors,
            "injected_timeouts": self.injected_timeouts,
            "crashed": self._crashed,
        }

    def __repr__(self) -> str:
        return (f"FaultPolicy(calls={self.calls}, "
                f"latency={self.latency_seconds}s, "
                f"error_p={self.error_probability}, "
                f"crashed={self._crashed})")


def call_with_policy(policy: FaultPolicy | None, operation: str,
                     function, *args, **kwargs):
    """Run ``function`` behind an optional fault policy.

    The convenience form for wrapping ad-hoc calls (the wire client's
    transport attempts); replica calls go through
    :meth:`repro.resilience.replica.Replica.call` instead, which adds
    locking and health accounting.
    """
    if policy is not None:
        policy.on_call(operation)
    return function(*args, **kwargs)
