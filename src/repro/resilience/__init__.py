"""Replication and fault tolerance for the serving tier.

The package makes one promise and builds everything around it: **as long
as every shard keeps one healthy replica, answers are bit-identical to an
unreplicated fleet and no fault is visible to the caller**.  The pieces:

* :mod:`repro.resilience.replica` — :class:`ReplicatedShard`, N serving
  nodes per hash-shard with write fan-in (divergence-version-checked),
  round-robin / rendezvous read spreading, fault ejection with failover,
  and exact rebuild (peer snapshot or :mod:`repro.storage`);
* :mod:`repro.resilience.service` — :class:`ReplicatedSimilarityService`,
  the fleet-level drop-in for
  :class:`~repro.serving.service.ShardedSimilarityService` (same hash
  routing, same persist format) plus kill/recover/health-check plumbing;
* :mod:`repro.resilience.faults` — :class:`FaultPolicy`, seeded injectable
  latency / errors / timeouts / crash-on-nth-call in front of any node or
  wire call — the chaos seam the Hypothesis suite and the availability
  benchmark drive;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` /
  :class:`RetrySchedule`, deadlines and capped exponential backoff with
  seeded jitter honoring server ``Retry-After`` hints;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, the
  closed/open/half-open per-endpoint breaker the wire client mounts.
"""

from repro.core.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    ReplicaDivergenceError,
    ReplicaUnavailableError,
    ResilienceError,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.faults import FaultPolicy, call_with_policy
from repro.resilience.replica import (
    RENDEZVOUS,
    ROUND_ROBIN,
    Replica,
    ReplicatedShard,
)
from repro.resilience.retry import RetryPolicy, RetrySchedule
from repro.resilience.service import ReplicatedSimilarityService

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "FaultPolicy",
    "HALF_OPEN",
    "InjectedFaultError",
    "OPEN",
    "RENDEZVOUS",
    "ROUND_ROBIN",
    "Replica",
    "ReplicaDivergenceError",
    "ReplicaUnavailableError",
    "ReplicatedShard",
    "ReplicatedSimilarityService",
    "ResilienceError",
    "RetryPolicy",
    "RetrySchedule",
    "call_with_policy",
]
