"""MinHash / LSH approximate similarity join (Broder [5, 6] lineage).

The paper's related-work section covers the Locality Sensitive Hashing
family: estimate Jaccard similarity from min-wise hash signatures, and use
banding to generate candidate pairs without comparing everything against
everything.  These algorithms are approximate and sequential, which is
exactly why the paper excludes them from its experiments; they are
implemented here so that the trade-off (speed and recall versus exactness)
can be demonstrated and tested.

Multisets are handled through the set expansion of Chaudhuri et al. [10]
(each element repeated once per unit of multiplicity), under which the
Jaccard similarity of the expansions equals the Ruzicka similarity of the
original multisets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.exceptions import DatasetError, MeasureNotApplicableError
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair, canonical_pair
from repro.mapreduce.partitioner import stable_hash
from repro.similarity.base import validate_threshold
from repro.similarity.registry import get_measure

#: Measures whose similarity MinHash signatures can estimate.
SUPPORTED_MEASURES = ("jaccard", "ruzicka", "weighted_jaccard")


def minhash_signature(multiset: Multiset, num_hashes: int,
                      use_expansion: bool, seed: int = 0) -> tuple[int, ...]:
    """Compute the min-wise hash signature of a multiset.

    With ``use_expansion`` the signature is taken over the multiset's set
    expansion (so signature agreement estimates Ruzicka); without it the
    underlying set is hashed (estimating plain Jaccard).
    """
    if num_hashes < 1:
        raise ValueError("num_hashes must be at least 1")
    items: Iterable = (multiset.set_expansion() if use_expansion
                       else multiset.underlying_set)
    frozen = tuple(items)
    if not frozen:
        return tuple(0 for _ in range(num_hashes))
    signature = []
    for hash_index in range(num_hashes):
        salt = f"minhash-{seed}-{hash_index}"
        signature.append(min(stable_hash(item, salt=salt) for item in frozen))
    return tuple(signature)


def estimate_similarity(signature_a: tuple[int, ...],
                        signature_b: tuple[int, ...]) -> float:
    """Estimate similarity as the fraction of agreeing signature components."""
    if len(signature_a) != len(signature_b):
        raise ValueError("signatures must have the same length")
    if not signature_a:
        return 0.0
    matches = sum(1 for left, right in zip(signature_a, signature_b) if left == right)
    return matches / len(signature_a)


@dataclass(frozen=True)
class LSHParameters:
    """Banding parameters: ``bands * rows_per_band`` hash functions."""

    num_bands: int = 16
    rows_per_band: int = 8

    def __post_init__(self) -> None:
        if self.num_bands < 1 or self.rows_per_band < 1:
            raise ValueError("num_bands and rows_per_band must be positive")

    @property
    def num_hashes(self) -> int:
        """Total signature length."""
        return self.num_bands * self.rows_per_band

    def collision_probability(self, similarity: float) -> float:
        """Probability that a pair with the given similarity collides in some band."""
        return 1.0 - (1.0 - similarity ** self.rows_per_band) ** self.num_bands


def derive_banding(threshold: float, recall: float, *,
                   max_hashes: int = 256, max_rows: int = 32) -> LSHParameters:
    """Banding parameters guaranteeing ``collision_probability(threshold) >= recall``.

    For every row count ``r`` the minimal band count is
    ``b = ceil(log(1 - recall) / log(1 - threshold**r))``; more rows per band
    sharpen the S-curve (fewer sub-threshold false candidates) at the price
    of more hash functions.  The derivation keeps the largest ``r`` whose
    minimal signature stays within ``max_hashes`` total hashes — ``r = 1``
    is always feasible, so the constraint can never make the target
    unreachable, and the returned parameters provably meet the recall bound
    at the threshold (checked against float rounding before returning).
    """
    validate_threshold(threshold)
    if not 0.0 < recall < 1.0:
        raise ValueError("recall must be in (0, 1) to derive banding; "
                         "an exact join does not use banding at all")
    if max_hashes < 1:
        raise ValueError("max_hashes must be at least 1")
    chosen: LSHParameters | None = None
    for rows in range(1, max_rows + 1):
        miss = 1.0 - threshold ** rows
        if miss <= 0.0:
            bands = 1  # threshold == 1.0: any single band collides surely
        else:
            bands = max(1, math.ceil(math.log(1.0 - recall) / math.log(miss)))
        if bands * rows > max_hashes:
            break
        candidate = LSHParameters(num_bands=bands, rows_per_band=rows)
        while candidate.collision_probability(threshold) < recall:
            candidate = LSHParameters(num_bands=candidate.num_bands + 1,
                                      rows_per_band=rows)
            if candidate.num_hashes > max_hashes:
                candidate = None
                break
        if candidate is not None:
            chosen = candidate
    if chosen is None:
        # Unreachable in practice (rows=1 always fits), kept as a guard.
        chosen = LSHParameters(num_bands=max(
            1, math.ceil(math.log(1.0 - recall) / math.log(1.0 - threshold))),
            rows_per_band=1)
    return chosen


class MinHashLSHJoin:
    """Approximate all-pair similarity join via MinHash banding.

    Candidate pairs are the pairs agreeing on at least one full band; their
    similarity is either estimated from the signatures (default) or verified
    exactly when ``verify_exact`` is set, in which case the algorithm's only
    approximation is potential recall loss from banding.

    Runnable through the unified engine as
    ``JoinSpec(algorithm=MinHashLSHJoin.algorithm)`` (the engine verifies
    candidates exactly, so only banding recall is approximate).
    """

    #: The :attr:`repro.engine.spec.JoinSpec.algorithm` name of this baseline.
    algorithm = "minhash"

    def __init__(self, measure: str = "ruzicka", threshold: float = 0.5,
                 parameters: LSHParameters | None = None,
                 verify_exact: bool = False, seed: int = 0) -> None:
        if measure not in SUPPORTED_MEASURES:
            raise MeasureNotApplicableError(
                f"MinHash estimates Jaccard-family measures only; got {measure!r}")
        self.measure_name = measure
        self.measure = get_measure(measure)
        self.threshold = validate_threshold(threshold)
        self.parameters = parameters or LSHParameters()
        self.verify_exact = verify_exact
        self.seed = seed
        #: Number of candidate pairs examined in the last run.
        self.last_candidates = 0

    def run(self, multisets: Iterable[Multiset]) -> list[SimilarPair]:
        """Return the (approximately) similar pairs.

        Duplicate multiset ids raise :class:`~repro.core.exceptions.DatasetError`
        (a dict keyed by id would silently drop all but the last occurrence).
        Empty multisets are skipped entirely: their all-zero signatures would
        otherwise band-collide with each other and report ``similarity=1.0``
        pairs the exact measures score as 0.0, and no non-empty multiset can
        reach a positive threshold against them either.
        """
        entities: dict = {}
        for multiset in multisets:
            if multiset.id in entities:
                raise DatasetError(
                    f"duplicate multiset id {multiset.id!r}: every multiset "
                    "in a join must have a unique identifier")
            entities[multiset.id] = multiset
        use_expansion = self.measure_name in ("ruzicka", "weighted_jaccard")
        signatures = {
            multiset_id: minhash_signature(entity, self.parameters.num_hashes,
                                           use_expansion, self.seed)
            for multiset_id, entity in entities.items()
            if entity.cardinality > 0
        }
        candidates = self._banding_candidates(signatures)
        self.last_candidates = len(candidates)
        results = []
        for first_id, second_id in sorted(candidates):
            if self.verify_exact:
                similarity = self.measure.similarity(entities[first_id],
                                                     entities[second_id])
            else:
                similarity = estimate_similarity(signatures[first_id],
                                                 signatures[second_id])
            if similarity >= self.threshold:
                results.append(SimilarPair(first_id, second_id, similarity))
        return results

    def _banding_candidates(self, signatures: dict) -> set[tuple]:
        candidates: set[tuple] = set()
        rows = self.parameters.rows_per_band
        for band in range(self.parameters.num_bands):
            buckets: dict[tuple, list] = {}
            start = band * rows
            for multiset_id, signature in signatures.items():
                key = signature[start:start + rows]
                buckets.setdefault(key, []).append(multiset_id)
            for bucket in buckets.values():
                if len(bucket) < 2:
                    continue
                ordered = sorted(bucket, key=repr)
                for index_i in range(len(ordered)):
                    for index_j in range(index_i + 1, len(ordered)):
                        candidates.add(canonical_pair(ordered[index_i],
                                                      ordered[index_j]))
        return candidates
