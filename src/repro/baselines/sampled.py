"""Sampled approximate similarity join: exact join over a uniform sample.

The simplest approximate tier: keep each multiset with probability
``rate`` (decided by a deterministic hash of its id, so runs are
reproducible and two runs over the same corpus sample the same subset),
run the exact join over the survivors, and report those pairs.  A true
pair survives when *both* endpoints survive, so the expected recall is
``rate ** 2`` and the work of the quadratic verification drops by the same
factor — the classic result-sampling trade the planner can price directly.

Unlike MinHash banding the loss is uniform across similarity values: a
pair at similarity 0.99 is exactly as likely to be dropped as one at the
threshold.  In exchange every *reported* pair carries its exact similarity
(precision is always 1.0) and the algorithm supports every registered
measure, not just the Jaccard family.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.exceptions import DatasetError
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair
from repro.mapreduce.partitioner import stable_hash
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.exact import all_pairs_exact
from repro.similarity.registry import get_measure

#: Upper bound of the 64-bit hash space ``stable_hash`` draws from.
_HASH_SPACE = float(2 ** 64)


def sample_rate_for_recall(recall: float) -> float:
    """The per-multiset keep rate targeting ``recall`` pair survival.

    A pair survives with probability ``rate ** 2``; solving
    ``rate = sqrt(recall)`` would put the *expected* recall exactly on the
    target, leaving the measured value below it about half the time.  The
    rate therefore targets the midpoint ``(1 + recall) / 2`` instead, so
    the slack absorbs sampling variance on real corpora.
    """
    if not 0.0 < recall <= 1.0:
        raise ValueError("recall must be in (0, 1]")
    if recall == 1.0:
        return 1.0
    return math.sqrt((1.0 + recall) / 2.0)


class SampledJoin:
    """Approximate all-pair join: exact join over a hash-sampled corpus.

    Runnable through the unified engine as
    ``JoinSpec(algorithm="sampled", recall=...)``; the recall target picks
    the sample rate via :func:`sample_rate_for_recall`.
    """

    #: The :attr:`repro.engine.spec.JoinSpec.algorithm` name of this baseline.
    algorithm = "sampled"

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 threshold: float = 0.5, recall: float = 0.95,
                 intern: bool = False, seed: int = 0) -> None:
        self.measure = get_measure(measure)
        self.threshold = validate_threshold(threshold)
        self.rate = sample_rate_for_recall(recall)
        self.recall = recall
        self.intern = intern
        self.seed = seed
        #: Number of multisets that survived sampling in the last run.
        self.last_sampled = 0

    def keeps(self, multiset_id: object) -> bool:
        """Whether the deterministic sampler keeps this multiset."""
        if self.rate >= 1.0:
            return True
        draw = stable_hash(multiset_id, salt=f"sampled-join-{self.seed}")
        return draw / _HASH_SPACE < self.rate

    def run(self, multisets: Iterable[Multiset]) -> list[SimilarPair]:
        """Return the similar pairs of the sampled sub-corpus."""
        seen: set = set()
        sample: list[Multiset] = []
        for multiset in multisets:
            if multiset.id in seen:
                raise DatasetError(
                    f"duplicate multiset id {multiset.id!r}: every multiset "
                    "in a join must have a unique identifier")
            seen.add(multiset.id)
            if self.keeps(multiset.id):
                sample.append(multiset)
        self.last_sampled = len(sample)
        return all_pairs_exact(sample, self.measure, self.threshold,
                               intern=self.intern)
