"""Sequential inverted-index similarity join (Sarawagi and Kirpal [29] style).

Builds an in-memory inverted index from elements to the multisets containing
them, generates candidate pairs from the postings (pairs sharing at least
one element) and verifies each candidate exactly.  This is the single-machine
ancestor of the V-SMART-Join similarity phase: the candidate generation is
identical, only centralised.

Two optional refinements from the literature are included:

* *size filtering* — candidates whose cardinalities cannot reach the
  threshold (``|Mj| < size_lower_bound(|Mi|)``) are skipped;
* *stop-word skipping* — elements whose posting list exceeds a frequency
  limit contribute no candidates (the sequential analogue of the paper's
  stop-word preprocessing).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable

from repro.core.multiset import Multiset
from repro.core.records import SimilarPair, canonical_pair
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.registry import get_measure


class InvertedIndexJoin:
    """Exact all-pair join driven by an in-memory inverted index.

    Runnable through the unified engine as
    ``JoinSpec(algorithm=InvertedIndexJoin.algorithm)`` (the spec's
    ``stop_word_frequency`` maps onto this class's knob of the same name).
    """

    #: The :attr:`repro.engine.spec.JoinSpec.algorithm` name of this baseline.
    algorithm = "inverted_index"

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 threshold: float = 0.5,
                 use_size_filter: bool = True,
                 stop_word_frequency: int | None = None) -> None:
        self.measure = get_measure(measure)
        self.threshold = validate_threshold(threshold)
        self.use_size_filter = use_size_filter
        self.stop_word_frequency = stop_word_frequency
        #: Number of candidate pairs verified in the last run (for ablations).
        self.last_candidates = 0

    def run(self, multisets: Iterable[Multiset]) -> list[SimilarPair]:
        """Return every pair with similarity at least the threshold."""
        entities = {multiset.id: multiset for multiset in multisets}
        index = self._build_index(entities)
        candidates = self._generate_candidates(index)
        self.last_candidates = len(candidates)
        results = []
        for first_id, second_id in sorted(candidates):
            entity_i = entities[first_id]
            entity_j = entities[second_id]
            if self.use_size_filter and not self._passes_size_filter(entity_i, entity_j):
                continue
            similarity = self.measure.similarity(entity_i, entity_j)
            if similarity >= self.threshold:
                results.append(SimilarPair(first_id, second_id, similarity))
        return results

    def _build_index(self, entities: dict) -> dict[Hashable, list]:
        index: dict[Hashable, list] = {}
        for multiset in entities.values():
            for element in multiset.underlying_set:
                index.setdefault(element, []).append(multiset.id)
        return index

    def _generate_candidates(self, index: dict[Hashable, list]) -> set[tuple]:
        candidates: set[tuple] = set()
        for element, postings in index.items():
            if (self.stop_word_frequency is not None
                    and len(postings) > self.stop_word_frequency):
                continue
            for first_id, second_id in combinations(postings, 2):
                candidates.add(canonical_pair(first_id, second_id))
        return candidates

    def _passes_size_filter(self, entity_i: Multiset, entity_j: Multiset) -> bool:
        size_i = self.measure.unilateral(entity_i)
        size_j = self.measure.unilateral(entity_j)
        if not size_i or not size_j:
            return True
        small, large = sorted((size_i[0], size_j[0]))
        bound = self.measure.size_lower_bound(large, self.threshold)
        return small >= bound or bound <= 0
