"""Naive all-pairs baseline.

The simplest possible exact algorithm: evaluate the similarity of every
unordered pair.  Quadratic in the number of entities, it exists as ground
truth for tests and as the lower anchor in the baseline comparisons.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.multiset import Multiset
from repro.core.records import SimilarPair
from repro.similarity.base import NominalSimilarityMeasure
from repro.similarity.exact import all_pairs_exact


class BruteForceJoin:
    """Exhaustive exact all-pair similarity join.

    Runnable through the unified engine as
    ``JoinSpec(algorithm=BruteForceJoin.algorithm)``.
    """

    #: The :attr:`repro.engine.spec.JoinSpec.algorithm` name of this baseline.
    algorithm = "exact"

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 threshold: float = 0.5) -> None:
        self.measure = measure
        self.threshold = threshold

    def run(self, multisets: Iterable[Multiset]) -> list[SimilarPair]:
        """Return every pair with similarity at least the threshold."""
        return all_pairs_exact(multisets, self.measure, self.threshold)
