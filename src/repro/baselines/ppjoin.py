"""Sequential PPJoin-style all-pairs algorithm (Xiao et al. [34] lineage).

This is the single-machine state of the art the paper's related work builds
on, and the algorithm VCL parallelises.  The implementation combines the
classical filters on top of a prefix-restricted inverted index:

* **prefix filtering** — only the prefix elements of each entity are indexed
  and probed, so candidate pairs must share a prefix element;
* **size filtering** — entities too small relative to the probe cannot reach
  the threshold and are skipped (Arasu et al. [2]);
* **positional filtering** — the position of the shared prefix element in the
  canonical order upper-bounds the achievable overlap and prunes candidates
  before verification.

The algorithm is exact: every surviving candidate is verified with the full
similarity computation.  It operates on the weighted (multiset) prefixes of
:mod:`repro.vcl.prefix`, so it supports the same measures as the rest of the
library.  The positional bound used here is the weighted generalisation of
the classical one: splitting the common elements of a pair around the shared
probe element, the part before it is bounded by the smaller of the two
already-scanned weights and the part from it onwards by the smaller of the
two remaining weights; the bound therefore never prunes a qualifying pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.multiset import Multiset
from repro.core.records import SimilarPair
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.registry import get_measure
from repro.vcl.prefix import frequency_rank_function, prefix_elements


@dataclass(frozen=True)
class _IndexedEntry:
    """One posting of the prefix-restricted inverted index."""

    entity: Multiset
    size: float
    before_weight: float
    remaining_weight: float


@dataclass(frozen=True)
class _OrderedView:
    """An entity's elements in canonical order with cumulative weights."""

    entity: Multiset
    size: float
    elements: tuple
    before_weights: tuple
    remaining_weights: tuple
    prefix_length: int


class PPJoin:
    """Prefix-filtered, size-filtered, position-filtered exact join.

    Runnable through the unified engine as
    ``JoinSpec(algorithm=PPJoin.algorithm)``.
    """

    #: The :attr:`repro.engine.spec.JoinSpec.algorithm` name of this baseline.
    algorithm = "ppjoin"

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 threshold: float = 0.5,
                 use_positional_filter: bool = True,
                 use_size_filter: bool = True) -> None:
        self.measure = get_measure(measure)
        self.threshold = validate_threshold(threshold)
        self.use_positional_filter = use_positional_filter
        self.use_size_filter = use_size_filter
        #: Number of candidate pairs verified in the last run (for ablations).
        self.last_candidates = 0

    def run(self, multisets: Iterable[Multiset]) -> list[SimilarPair]:
        """Return every pair with similarity at least the threshold."""
        entities = list(multisets)
        frequencies: dict = {}
        for entity in entities:
            for element in entity.underlying_set:
                frequencies[element] = frequencies.get(element, 0) + 1
        rank = frequency_rank_function(frequencies)
        views = [self._ordered_view(entity, rank) for entity in entities]
        # Process entities in increasing size order so that, when probing,
        # the already-indexed entities are never larger than the probe —
        # which is what makes the one-sided size filter sufficient.
        views.sort(key=lambda view: (view.size, repr(view.entity.id)))

        index: dict[object, list[_IndexedEntry]] = {}
        results: list[SimilarPair] = []
        candidates_verified = 0
        for view in views:
            candidates: dict[object, Multiset] = {}
            for position in range(view.prefix_length):
                element = view.elements[position]
                size_bound = self.measure.size_lower_bound(view.size, self.threshold)
                for entry in index.get(element, ()):
                    if entry.entity.id in candidates:
                        continue
                    if self.use_size_filter and entry.size < size_bound:
                        continue
                    if self.use_positional_filter and not self._positional_ok(
                            view, position, entry):
                        continue
                    candidates[entry.entity.id] = entry.entity
            for other in candidates.values():
                candidates_verified += 1
                similarity = self.measure.similarity(view.entity, other)
                if similarity >= self.threshold:
                    results.append(SimilarPair.make(view.entity.id, other.id, similarity))
            for position in range(view.prefix_length):
                element = view.elements[position]
                index.setdefault(element, []).append(_IndexedEntry(
                    entity=view.entity,
                    size=view.size,
                    before_weight=view.before_weights[position],
                    remaining_weight=view.remaining_weights[position]))
        self.last_candidates = candidates_verified
        results.sort()
        return results

    # -- helpers ---------------------------------------------------------------

    def _ordered_view(self, entity: Multiset, rank) -> _OrderedView:
        elements = tuple(sorted(entity.underlying_set, key=rank))
        weights = [self.measure.effective_multiplicity(entity.multiplicity(element))
                   for element in elements]
        size = float(sum(weights))
        before = []
        cumulative = 0.0
        for weight in weights:
            before.append(cumulative)
            cumulative += weight
        remaining = [size - value for value in before]
        prefix = prefix_elements(entity, rank, self.measure, self.threshold)
        return _OrderedView(entity=entity, size=size, elements=elements,
                            before_weights=tuple(before),
                            remaining_weights=tuple(remaining),
                            prefix_length=len(prefix))

    def _positional_ok(self, view: _OrderedView, position: int,
                       entry: _IndexedEntry) -> bool:
        required = self.measure.minimum_overlap(view.size, entry.size, self.threshold)
        if required <= 0:
            return True
        best_case = (min(view.before_weights[position], entry.before_weight)
                     + min(view.remaining_weights[position], entry.remaining_weight))
        return best_case >= required
