"""Sequential baseline algorithms referenced by the paper's related work."""

from repro.baselines.brute_force import BruteForceJoin
from repro.baselines.inverted_index import InvertedIndexJoin
from repro.baselines.minhash import (
    LSHParameters,
    MinHashLSHJoin,
    estimate_similarity,
    minhash_signature,
)
from repro.baselines.ppjoin import PPJoin

__all__ = [
    "BruteForceJoin",
    "InvertedIndexJoin",
    "LSHParameters",
    "MinHashLSHJoin",
    "PPJoin",
    "estimate_similarity",
    "minhash_signature",
]
