"""Sequential baseline algorithms referenced by the paper's related work."""

from repro.baselines.brute_force import BruteForceJoin
from repro.baselines.inverted_index import InvertedIndexJoin
from repro.baselines.minhash import (
    LSHParameters,
    MinHashLSHJoin,
    derive_banding,
    estimate_similarity,
    minhash_signature,
)
from repro.baselines.ppjoin import PPJoin
from repro.baselines.sampled import SampledJoin, sample_rate_for_recall

__all__ = [
    "BruteForceJoin",
    "InvertedIndexJoin",
    "LSHParameters",
    "MinHashLSHJoin",
    "PPJoin",
    "SampledJoin",
    "derive_banding",
    "estimate_similarity",
    "minhash_signature",
    "sample_rate_for_recall",
]
