"""Durable persistence tier: SQLite-backed stores for every artifact.

Everything the in-memory subsystems build — interned dictionaries,
serving indexes, maintained join views, finished join results — can be
saved to and loaded from a single-file SQLite database with **exact**
round-trips:

* :class:`~repro.storage.engine.StorageEngine` — the one SQLite wrapper
  (WAL, enforced foreign keys, versioned migrations, context-managed
  transactions) every store speaks through;
* :mod:`~repro.storage.codecs` — save/load for element dictionaries,
  corpora and serving indexes, parity-asserted against the originals;
* :class:`~repro.storage.viewstore.ViewStore` — snapshot + append-only
  mutation log; ``JoinView.recover(path)`` replays to the bit-identical
  pre-crash pair set;
* :class:`~repro.storage.resultstore.ResultStore` — stored join results
  with lazy pair iteration (``JoinResult.to_sqlite`` / ``from_sqlite``).

The convenient entry points live on the objects themselves
(``SimilarityIndex.save`` / ``.load``, ``JoinView.recover``,
``JoinResult.to_sqlite`` / ``.from_sqlite``, ``ServingNode.persist``);
this package is the machinery behind them.
"""

from repro.storage.codecs import (
    load_dictionary,
    load_index,
    save_dictionary,
    save_index,
)
from repro.storage.engine import (
    DEFAULT_BUSY_TIMEOUT,
    MIGRATIONS,
    SCHEMA_VERSION,
    StorageEngine,
    open_engine,
)
from repro.storage.resultstore import ResultStore, StoredPairSequence
from repro.storage.values import decode_value, encode_value
from repro.storage.viewstore import ViewStore, ViewSubscription

__all__ = [
    "DEFAULT_BUSY_TIMEOUT",
    "MIGRATIONS",
    "ResultStore",
    "SCHEMA_VERSION",
    "StorageEngine",
    "StoredPairSequence",
    "ViewStore",
    "ViewSubscription",
    "decode_value",
    "encode_value",
    "load_dictionary",
    "load_index",
    "open_engine",
    "save_dictionary",
    "save_index",
]
