"""The SQLite wrapper every durable artifact is stored through.

:class:`StorageEngine` owns one SQLite database file and applies the
schema discipline the storage tier standardises on:

* **pragmas** set at connect time: ``journal_mode=WAL`` (readers never
  block the writer, and committed transactions survive a crash),
  ``foreign_keys=ON`` (referential integrity is enforced, not assumed),
  ``synchronous=NORMAL`` (safe with WAL, far cheaper than ``FULL``) and a
  ``busy_timeout`` so concurrent openers wait instead of failing;
* **versioned migrations** through ``PRAGMA user_version``: the schema is
  a list of numbered steps, each applied in its own transaction exactly
  once, so a database written by an older release upgrades in place and a
  database written by a *newer* release is refused instead of corrupted;
* **context-managed transactions**: :meth:`transaction` runs
  ``BEGIN IMMEDIATE`` … ``COMMIT`` (rollback on any exception), which is
  the only way writes happen — the connection itself stays in autocommit
  so no implicit half-open transaction can hold the WAL hostage.

The engine is deliberately dumb about *what* is stored; the codecs
(:mod:`repro.storage.codecs`), the view store
(:mod:`repro.storage.viewstore`) and the result store
(:mod:`repro.storage.resultstore`) own their tables and speak to SQLite
only through this class.
"""

from __future__ import annotations

import os
import sqlite3
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.core.exceptions import StorageError

#: How long a locked database is retried before giving up, in seconds.
DEFAULT_BUSY_TIMEOUT = 30.0

#: The numbered schema steps.  Append-only: released steps are immutable,
#: new tables and indexes arrive as new entries.
MIGRATIONS: tuple[tuple[int, str], ...] = (
    (1, """
    -- Per-section key/value metadata (spec descriptions, format flags,
    -- snapshot versions).  Sections: 'store', 'index', 'view', 'result',
    -- 'dictionary'.
    CREATE TABLE meta (
        section TEXT NOT NULL,
        key     TEXT NOT NULL,
        value   TEXT,
        PRIMARY KEY (section, key)
    ) WITHOUT ROWID;

    -- An ElementDictionary: ids are the document-frequency order.
    CREATE TABLE dictionary_entries (
        element_id INTEGER PRIMARY KEY,
        element    TEXT NOT NULL UNIQUE,
        frequency  INTEGER NOT NULL
    );

    -- Corpora.  One file can hold several (the serving index's members,
    -- a view's snapshot corpus, a result's joined corpus), discriminated
    -- by the owning store; `seq` preserves insertion order, which the
    -- in-memory structures are rebuilt in.
    CREATE TABLE members (
        store     TEXT NOT NULL,
        seq       INTEGER NOT NULL,
        member_id TEXT NOT NULL,
        PRIMARY KEY (store, seq),
        UNIQUE (store, member_id)
    );
    CREATE TABLE member_elements (
        store        TEXT NOT NULL,
        member_seq   INTEGER NOT NULL,
        position     INTEGER NOT NULL,
        element      TEXT NOT NULL,
        multiplicity INTEGER NOT NULL,
        PRIMARY KEY (store, member_seq, position),
        FOREIGN KEY (store, member_seq)
            REFERENCES members (store, seq) ON DELETE CASCADE
    );

    -- The serving index's two maintained structures (paper section 3.2):
    -- Uni partials per member and the inverted postings.  `element` is the
    -- encoded raw element; interned indexes additionally persist their
    -- dense-id assignment so the rebuilt interner matches exactly.
    CREATE TABLE index_uni (
        member_seq INTEGER NOT NULL,
        position   INTEGER NOT NULL,
        value      REAL NOT NULL,
        PRIMARY KEY (member_seq, position)
    );
    CREATE TABLE index_interned (
        dense_id INTEGER PRIMARY KEY,
        element  TEXT NOT NULL UNIQUE
    );
    CREATE TABLE index_postings (
        posting_seq INTEGER PRIMARY KEY,
        element     TEXT NOT NULL,
        member_seq  INTEGER NOT NULL,
        effective   REAL NOT NULL,
        UNIQUE (element, member_seq)
    );

    -- A JoinView snapshot's materialized pair map ...
    CREATE TABLE view_pairs (
        first      TEXT NOT NULL,
        second     TEXT NOT NULL,
        similarity REAL NOT NULL,
        PRIMARY KEY (first, second)
    ) WITHOUT ROWID;

    -- ... and the append-only mutation log that carries it forward.
    -- `batch_seq` is the view version *after* the batch; recovery replays
    -- every batch with batch_seq > the snapshot's version, in order.
    CREATE TABLE mutation_log (
        batch_seq INTEGER NOT NULL,
        position  INTEGER NOT NULL,
        kind      TEXT NOT NULL CHECK (kind IN ('upsert', 'delete')),
        target    TEXT NOT NULL,
        payload   TEXT,
        PRIMARY KEY (batch_seq, position)
    );

    -- A JoinResult's pairs, in result order, point-queryable by pair.
    CREATE TABLE result_pairs (
        pair_seq   INTEGER PRIMARY KEY,
        first      TEXT NOT NULL,
        second     TEXT NOT NULL,
        similarity REAL NOT NULL,
        UNIQUE (first, second)
    );
    """),
)

#: The schema version this release reads and writes.
SCHEMA_VERSION = MIGRATIONS[-1][0]


class StorageEngine:
    """One durable SQLite database with the storage tier's discipline.

    Parameters
    ----------
    path:
        Database file path (created, with its schema, if missing).
        ``":memory:"`` is accepted for ephemeral use — WAL quietly degrades
        to the default journal there, everything else behaves identically.
    busy_timeout:
        Seconds a locked database is retried before raising.
    """

    def __init__(self, path: str | os.PathLike,
                 busy_timeout: float = DEFAULT_BUSY_TIMEOUT) -> None:
        self.path = os.fspath(path)
        try:
            # isolation_level=None: autocommit, so transaction boundaries
            # are exactly the explicit BEGIN/COMMIT of transaction().
            self._connection = sqlite3.connect(
                self.path, timeout=busy_timeout, isolation_level=None)
        except sqlite3.Error as error:
            raise StorageError(
                f"cannot open storage database {self.path!r}: {error}") from None
        self._connection.execute(f"PRAGMA busy_timeout = {int(busy_timeout * 1000)}")
        self._connection.execute("PRAGMA journal_mode = WAL")
        self._connection.execute("PRAGMA synchronous = NORMAL")
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._in_transaction = False
        self._migrate()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._connection is None else "open"
        return f"StorageEngine(path={self.path!r}, {state})"

    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection; raises once the engine is closed."""
        if self._connection is None:
            raise StorageError(
                f"storage engine for {self.path!r} is closed")
        return self._connection

    # -- schema --------------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The database's current ``PRAGMA user_version``."""
        return int(self.connection.execute(
            "PRAGMA user_version").fetchone()[0])

    def _migrate(self) -> None:
        current = self.schema_version
        if current > SCHEMA_VERSION:
            raise StorageError(
                f"database {self.path!r} has schema version {current}, newer "
                f"than this release's {SCHEMA_VERSION}; refusing to touch it")
        for version, script in MIGRATIONS:
            if version <= current:
                continue
            # One transaction per step, with the version bump inside it:
            # a crash mid-migration leaves the database exactly at the
            # previous version, never half-migrated.  (Not executescript —
            # that implicitly commits, escaping the transaction.)
            with self.transaction() as connection:
                for statement in _statements(script):
                    connection.execute(statement)
                connection.execute(f"PRAGMA user_version = {version}")

    # -- transactions --------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """``BEGIN IMMEDIATE`` … ``COMMIT``, rolling back on any exception.

        Nested use degrades gracefully: an inner ``transaction()`` joins
        the outer one (SQLite has no real nesting and savepoints would
        buy nothing here — every writer in this package is single-level).
        """
        connection = self.connection
        if self._in_transaction:
            yield connection
            return
        self._in_transaction = True
        try:
            connection.execute("BEGIN IMMEDIATE")
        except sqlite3.Error as error:
            self._in_transaction = False
            raise StorageError(f"cannot begin transaction: {error}") from None
        try:
            yield connection
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        finally:
            self._in_transaction = False
        connection.execute("COMMIT")

    # -- statement helpers ---------------------------------------------------

    def execute(self, sql: str, parameters: Sequence = ()) -> sqlite3.Cursor:
        """Execute one statement on the engine's connection."""
        return self.connection.execute(sql, parameters)

    def executemany(self, sql: str,
                    rows: Sequence[Sequence]) -> sqlite3.Cursor:
        """Execute one statement per row."""
        return self.connection.executemany(sql, rows)

    def query(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Execute and fetch all rows."""
        return self.connection.execute(sql, parameters).fetchall()

    def query_one(self, sql: str,
                  parameters: Sequence = ()) -> tuple | None:
        """Execute and fetch the first row, or ``None``."""
        return self.connection.execute(sql, parameters).fetchone()

    # -- the meta table ------------------------------------------------------

    def set_meta(self, section: str, key: str, value: str | None) -> None:
        """Upsert one ``meta`` entry (inside the caller's transaction)."""
        self.execute(
            "INSERT INTO meta (section, key, value) VALUES (?, ?, ?) "
            "ON CONFLICT (section, key) DO UPDATE SET value = excluded.value",
            (section, key, value))

    def get_meta(self, section: str, key: str) -> str | None:
        """Read one ``meta`` entry (``None`` when absent)."""
        row = self.query_one(
            "SELECT value FROM meta WHERE section = ? AND key = ?",
            (section, key))
        return row[0] if row is not None else None

    def meta_section(self, section: str) -> dict[str, str | None]:
        """All ``meta`` entries of one section."""
        return dict(self.query(
            "SELECT key, value FROM meta WHERE section = ?", (section,)))


def _statements(script: str) -> Iterator[str]:
    """Split a migration script into executable statements.

    Comment lines are stripped first (they document this module, not the
    database, and may contain semicolons); statements then end at ``;``,
    which no statement of ours contains in a literal.
    """
    kept = "\n".join(line for line in script.splitlines()
                     if line.strip() and not line.strip().startswith("--"))
    for chunk in kept.split(";"):
        if chunk.strip():
            yield chunk.strip()


def open_engine(source: "str | os.PathLike | StorageEngine",
                ) -> tuple["StorageEngine", bool]:
    """Resolve a path-or-engine argument; returns ``(engine, owned)``.

    Every storage entry point accepts either a filesystem path (the engine
    is created and must be closed by the caller that receives ``owned ==
    True``) or an already-open :class:`StorageEngine` (borrowed — left
    open).
    """
    if isinstance(source, StorageEngine):
        return source, False
    return StorageEngine(source), True
