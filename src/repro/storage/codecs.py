"""Persistence codecs: in-memory structures ⇄ storage-engine tables.

Each codec is a ``save_*`` / ``load_*`` pair over a
:class:`~repro.storage.engine.StorageEngine` (or a path, resolved through
:func:`~repro.storage.engine.open_engine`), parity-tested against the
in-memory originals:

* :func:`save_dictionary` / :func:`load_dictionary` — an
  :class:`~repro.core.interning.ElementDictionary` through its
  ``to_records`` rows (the document-frequency id order is the data);
* :func:`save_members` / :func:`load_members` — a corpus of
  :class:`~repro.core.multiset.Multiset`\\ s under a ``store``
  discriminator, preserving both corpus order and each multiset's element
  insertion order (query-time float accumulation follows element order, so
  preserving it is what makes reloaded answers *bit*-identical);
* :func:`save_index` / :func:`load_index` — a serving
  :class:`~repro.serving.index.SimilarityIndex` with its maintained
  ``Uni`` partials, inverted postings and (when interning) the dense-id
  assignment, so a load restores the exact structures without recomputing
  anything.

Floats (similarities, ``Uni`` components, effective multiplicities) are
stored in ``REAL`` columns — IEEE doubles on both sides, so round-trips
are exact.  Identifiers and elements go through
:mod:`repro.storage.values`.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.core.exceptions import StorageError
from repro.core.interning import ElementDictionary, LocalInterner
from repro.core.multiset import Multiset
from repro.storage.engine import StorageEngine, open_engine
from repro.storage.values import decode_value, encode_value

#: ``members.store`` discriminators.
INDEX_STORE = "index"
VIEW_STORE = "view"
RESULT_STORE = "result"


# -- element dictionaries -----------------------------------------------------

def save_dictionary(destination: str | os.PathLike | StorageEngine,
                    dictionary: ElementDictionary) -> None:
    """Persist an element dictionary (replacing any previously stored one)."""
    engine, owned = open_engine(destination)
    try:
        with engine.transaction():
            engine.execute("DELETE FROM dictionary_entries")
            engine.executemany(
                "INSERT INTO dictionary_entries "
                "(element_id, element, frequency) VALUES (?, ?, ?)",
                [(element_id, encode_value(element), frequency)
                 for element_id, element, frequency
                 in dictionary.to_records()])
            engine.set_meta("dictionary", "present", "1")
    finally:
        if owned:
            engine.close()


def load_dictionary(
        source: str | os.PathLike | StorageEngine) -> ElementDictionary:
    """Rebuild the stored element dictionary, ids and frequencies intact."""
    engine, owned = open_engine(source)
    try:
        if engine.get_meta("dictionary", "present") is None:
            raise StorageError(
                f"{engine.path!r} holds no element dictionary")
        rows = engine.query(
            "SELECT element_id, element, frequency FROM dictionary_entries "
            "ORDER BY element_id")
        return ElementDictionary.from_records(
            (element_id, decode_value(element), frequency)
            for element_id, element, frequency in rows)
    finally:
        if owned:
            engine.close()


# -- corpora ------------------------------------------------------------------

def save_members(engine: StorageEngine, store: str,
                 members: Iterable[Multiset]) -> int:
    """Replace the ``store`` corpus; caller supplies the transaction."""
    engine.execute("DELETE FROM members WHERE store = ?", (store,))
    engine.execute("DELETE FROM member_elements WHERE store = ?", (store,))
    count = 0
    element_rows: list[tuple] = []
    member_rows: list[tuple] = []
    for seq, multiset in enumerate(members):
        member_rows.append((store, seq, encode_value(multiset.id)))
        for position, (element, multiplicity) in enumerate(multiset.items()):
            element_rows.append(
                (store, seq, position, encode_value(element), multiplicity))
        count += 1
    engine.executemany(
        "INSERT INTO members (store, seq, member_id) VALUES (?, ?, ?)",
        member_rows)
    engine.executemany(
        "INSERT INTO member_elements "
        "(store, member_seq, position, element, multiplicity) "
        "VALUES (?, ?, ?, ?, ?)", element_rows)
    return count


def load_members(engine: StorageEngine, store: str) -> list[Multiset]:
    """Rebuild the ``store`` corpus in stored order, element order intact."""
    ids = {seq: decode_value(member_id) for seq, member_id in engine.query(
        "SELECT seq, member_id FROM members WHERE store = ? ORDER BY seq",
        (store,))}
    contents: dict[int, list[tuple]] = {seq: [] for seq in ids}
    for seq, element, multiplicity in engine.query(
            "SELECT member_seq, element, multiplicity FROM member_elements "
            "WHERE store = ? ORDER BY member_seq, position", (store,)):
        contents[seq].append((decode_value(element), multiplicity))
    return [Multiset(ids[seq], contents[seq]) for seq in sorted(ids)]


# -- serving indexes ----------------------------------------------------------

def save_index(destination: str | os.PathLike | StorageEngine,
               index) -> None:
    """Persist a :class:`~repro.serving.index.SimilarityIndex` exactly.

    Stores the indexed multisets, the maintained ``Uni`` partials, the
    inverted postings (keyed by encoded raw element; the dense-id keys of
    an interned index are restored through the persisted interner) and the
    index configuration.  One database holds one index; saving replaces
    any previous one.
    """
    engine, owned = open_engine(destination)
    try:
        interner = index._interner
        reverse: dict[int, object] = {}
        interned_rows: list[tuple] = []
        if interner is not None:
            for element, dense_id in interner.items():
                reverse[dense_id] = element
                interned_rows.append((dense_id, encode_value(element)))
        posting_rows: list[tuple] = []
        posting_seq = 0
        for key, postings in index._postings.items():
            element = reverse[key] if interner is not None else key
            encoded_element = encode_value(element)
            for member_id, effective in postings.items():
                posting_rows.append((posting_seq, encoded_element,
                                     encode_value(member_id), effective))
                posting_seq += 1
        with engine.transaction():
            seq_of = _replace_index_members(engine, index._multisets.values())
            engine.execute("DELETE FROM index_uni")
            engine.executemany(
                "INSERT INTO index_uni (member_seq, position, value) "
                "VALUES (?, ?, ?)",
                [(seq_of[encode_value(member_id)], position, value)
                 for member_id, partials in index._uni.items()
                 for position, value in enumerate(partials)])
            engine.execute("DELETE FROM index_interned")
            engine.executemany(
                "INSERT INTO index_interned (dense_id, element) VALUES (?, ?)",
                interned_rows)
            engine.execute("DELETE FROM index_postings")
            engine.executemany(
                "INSERT INTO index_postings "
                "(posting_seq, element, member_seq, effective) "
                "VALUES (?, ?, ?, ?)",
                [(seq, element, seq_of[member], effective)
                 for seq, element, member, effective in posting_rows])
            engine.set_meta("index", "measure", index.measure.name)
            engine.set_meta("index", "stop_word_frequency",
                            None if index.stop_word_frequency is None
                            else str(index.stop_word_frequency))
            engine.set_meta("index", "intern",
                            "1" if interner is not None else "0")
            engine.set_meta("index", "version", str(index.version))
    finally:
        if owned:
            engine.close()


def _replace_index_members(engine: StorageEngine,
                           members: Iterable[Multiset]) -> dict[str, int]:
    """Write the index corpus; returns encoded member id → stored seq."""
    save_members(engine, INDEX_STORE, members)
    return {member_id: seq for seq, member_id in engine.query(
        "SELECT seq, member_id FROM members WHERE store = ?",
        (INDEX_STORE,))}


def load_index(source: str | os.PathLike | StorageEngine):
    """Rebuild the stored serving index without recomputing any structure.

    The loaded index answers every threshold/top-k query identically to
    the index :func:`save_index` was given — same members, same ``Uni``
    tuples, same postings, same interner state — and keeps accepting
    writes from where the original left off.
    """
    from repro.serving.index import SimilarityIndex

    engine, owned = open_engine(source)
    try:
        meta = engine.meta_section("index")
        if "measure" not in meta:
            raise StorageError(f"{engine.path!r} holds no similarity index")
        stop_words = meta.get("stop_word_frequency")
        intern = meta.get("intern") == "1"
        index = SimilarityIndex(
            meta["measure"],
            stop_word_frequency=None if stop_words is None else int(stop_words),
            intern=intern)
        members = load_members(engine, INDEX_STORE)
        id_of_seq = {seq: decode_value(member_id)
                     for seq, member_id in engine.query(
                         "SELECT seq, member_id FROM members WHERE store = ?",
                         (INDEX_STORE,))}
        index._multisets = {member.id: member for member in members}
        index._uni = {}
        uni_parts: dict[int, list[float]] = {}
        for seq, position, value in engine.query(
                "SELECT member_seq, position, value FROM index_uni "
                "ORDER BY member_seq, position"):
            uni_parts.setdefault(seq, []).append(value)
        # seq order is member insertion order, like add() produces.
        for seq in sorted(uni_parts):
            index._uni[id_of_seq[seq]] = tuple(uni_parts[seq])
        if intern:
            index._interner = LocalInterner.from_items(
                (decode_value(element), dense_id)
                for dense_id, element in engine.query(
                    "SELECT dense_id, element FROM index_interned "
                    "ORDER BY dense_id"))
        postings: dict[object, dict] = {}
        for element, seq, effective in engine.query(
                "SELECT element, member_seq, effective FROM index_postings "
                "ORDER BY posting_seq"):
            raw = decode_value(element)
            key = index._interner.intern(raw) if intern else raw
            postings.setdefault(key, {})[id_of_seq[seq]] = effective
        index._postings = postings
        index._version = int(meta.get("version", "0"))
        return index
    finally:
        if owned:
            engine.close()


# -- join specs ---------------------------------------------------------------

#: JoinSpec fields the storage tier persists.  The session-infrastructure
#: fields (cluster, backend, cost_parameters, enforce_budgets) describe
#: *where* a join ran, not *what* it computed, and are not durable — a
#: loaded spec carries ``None`` for all four (= "use the session's").
_SPEC_FIELDS = ("threshold", "algorithm", "sharding_threshold",
                "stop_word_frequency", "chunk_size", "use_combiners",
                "intern", "prune_candidates", "vcl_element_order",
                "vcl_super_element_groups", "recall")


def describe_spec(spec) -> str:
    """Serialise a :class:`~repro.engine.spec.JoinSpec` to stored JSON."""
    from repro.similarity.registry import get_measure

    described = {field: getattr(spec, field) for field in _SPEC_FIELDS}
    described["measure"] = get_measure(spec.measure).name
    if spec.minhash_parameters is not None:
        described["minhash_parameters"] = {
            "num_bands": spec.minhash_parameters.num_bands,
            "rows_per_band": spec.minhash_parameters.rows_per_band}
    return json.dumps(described, sort_keys=True)


def spec_from_description(text: str):
    """Rebuild a :class:`~repro.engine.spec.JoinSpec` from stored JSON."""
    from repro.baselines.minhash import LSHParameters
    from repro.engine.spec import JoinSpec

    try:
        described = json.loads(text)
    except (TypeError, ValueError) as error:
        raise StorageError(
            f"stored join spec is not valid JSON: {error}") from None
    banding = described.pop("minhash_parameters", None)
    if banding is not None:
        described["minhash_parameters"] = LSHParameters(**banding)
    return JoinSpec(**described)


# -- pair maps ----------------------------------------------------------------

def encode_pair_rows(pairs: Iterable[tuple[tuple, float]]) -> list[tuple]:
    """``((first, second), similarity)`` pairs → encoded table rows."""
    return [(encode_value(first), encode_value(second), similarity)
            for (first, second), similarity in pairs]


def decode_pair_rows(rows: Sequence[tuple]) -> dict[tuple, float]:
    """Encoded table rows → a ``{(first, second): similarity}`` map."""
    return {(decode_value(first), decode_value(second)): similarity
            for first, second, similarity in rows}
