"""Durable :class:`~repro.engine.result.JoinResult`\\ s with lazy pairs.

:class:`ResultStore` persists a finished join — spec, concrete algorithm,
joined corpus and the similar pairs in result order — and loads it back as
a :class:`~repro.engine.result.JoinResult` whose ``pairs`` is a
:class:`StoredPairSequence`: length and point lookups are SQL queries,
iteration streams rows from disk through a short-lived connection, and
nothing is materialized until asked for.  A billion-pair result can be
opened, measured (``len``) and point-queried (:meth:`ResultStore.score`)
without reading the pair table into memory.

The pipeline statistics of the original run are *not* persisted — they
describe one simulated execution, not the result — so a loaded result
reports zero simulated seconds and no job stats, exactly like an
in-memory exact join does.
"""

from __future__ import annotations

import os
from typing import Iterator, Sequence

from repro.core.exceptions import StorageError
from repro.core.records import SimilarPair, canonical_pair
from repro.storage.codecs import (
    RESULT_STORE,
    describe_spec,
    load_members,
    save_members,
    spec_from_description,
)
from repro.storage.engine import StorageEngine, open_engine
from repro.storage.values import decode_value, encode_value


class ResultStore:
    """The durable home of one :class:`~repro.engine.result.JoinResult`.

    Parameters
    ----------
    destination:
        Database path (opened, and closed again by :meth:`close`) or an
        already-open :class:`StorageEngine` (borrowed).
    """

    def __init__(self,
                 destination: str | os.PathLike | StorageEngine) -> None:
        self._engine, self._owned = open_engine(destination)

    # -- lifecycle -----------------------------------------------------------

    @property
    def engine(self) -> StorageEngine:
        """The underlying storage engine."""
        return self._engine

    def close(self) -> None:
        """Close the engine if this store opened it."""
        if self._owned:
            self._engine.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- persistence ---------------------------------------------------------

    def save(self, result) -> int:
        """Persist a join result (replacing any previously stored one).

        Stores the spec, the concrete algorithm, the joined corpus and the
        pairs in result order; returns the pair count.  One transaction —
        a crash mid-save leaves the previous stored result intact.
        """
        engine = self._engine
        rows = [(seq, encode_value(pair.first), encode_value(pair.second),
                 pair.similarity)
                for seq, pair in enumerate(result.pairs)]
        with engine.transaction():
            save_members(engine, RESULT_STORE, result.multisets)
            engine.execute("DELETE FROM result_pairs")
            engine.executemany(
                "INSERT INTO result_pairs (pair_seq, first, second, similarity) "
                "VALUES (?, ?, ?, ?)", rows)
            engine.set_meta("result", "spec", describe_spec(result.spec))
            engine.set_meta("result", "algorithm", result.algorithm)
        return len(rows)

    def load(self, *, lazy: bool = True):
        """Rebuild the stored result as a :class:`JoinResult`.

        With ``lazy=True`` (the default) ``result.pairs`` is a
        :class:`StoredPairSequence` reading from this store's database
        file on demand; the sequence stays valid after the store is
        closed (it opens its own short-lived connections) but naturally
        requires the file to keep existing.  In-memory databases cannot
        be reopened, so they load eagerly regardless.
        """
        from repro.engine.result import JoinResult
        from repro.mapreduce.dfs import Dataset
        from repro.mapreduce.runner import PipelineResult

        engine = self._engine
        meta = engine.meta_section("result")
        if "spec" not in meta:
            raise StorageError(f"{engine.path!r} holds no join result")
        spec = spec_from_description(meta["spec"])
        algorithm = meta["algorithm"]
        multisets = load_members(engine, RESULT_STORE)
        if lazy and engine.path != ":memory:":
            pairs: Sequence[SimilarPair] = StoredPairSequence(engine.path)
        else:
            pairs = [SimilarPair(decode_value(first), decode_value(second),
                                 similarity)
                     for first, second, similarity in engine.query(
                         "SELECT first, second, similarity FROM result_pairs "
                         "ORDER BY pair_seq")]
        return JoinResult(
            spec=spec, algorithm=algorithm, pairs=pairs,
            pipeline=PipelineResult(name=algorithm,
                                    output=Dataset(f"{algorithm}:pairs", ()),
                                    job_stats=[],
                                    artifacts={"storage_path": engine.path}),
            multisets=multisets)

    # -- point queries (no materialization) -----------------------------------

    def __len__(self) -> int:
        return int(self._engine.query_one(
            "SELECT COUNT(*) FROM result_pairs")[0])

    def score(self, id_a, id_b) -> float | None:
        """The stored similarity of a pair, or ``None`` if not similar.

        One indexed point lookup — the disk-backed equivalent of
        :meth:`JoinView.score <repro.streaming.view.JoinView.score>`.
        """
        first, second = canonical_pair(id_a, id_b)
        row = self._engine.query_one(
            "SELECT similarity FROM result_pairs WHERE first = ? AND second = ?",
            (encode_value(first), encode_value(second)))
        return row[0] if row is not None else None


class StoredPairSequence(Sequence):
    """A read-only pair sequence backed by a stored result's database.

    Satisfies the :class:`Sequence` protocol a
    :class:`~repro.engine.result.JoinResult` expects of ``pairs`` —
    ``len``, indexing (negative too), iteration, containment — while
    keeping the pairs on disk: ``len`` is a cached ``COUNT(*)``,
    ``__getitem__`` a point query by ``pair_seq``, and ``__iter__``
    streams rows through a connection of its own, so consuming a result
    lazily never loads the pair table.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._count: int | None = None

    def _open(self) -> StorageEngine:
        return StorageEngine(self._path)

    def __len__(self) -> int:
        if self._count is None:
            with self._open() as engine:
                self._count = int(engine.query_one(
                    "SELECT COUNT(*) FROM result_pairs")[0])
        return self._count

    def __iter__(self) -> Iterator[SimilarPair]:
        with self._open() as engine:
            cursor = engine.execute(
                "SELECT first, second, similarity FROM result_pairs "
                "ORDER BY pair_seq")
            for first, second, similarity in cursor:
                yield SimilarPair(decode_value(first), decode_value(second),
                                  similarity)

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [self[index]
                    for index in range(*position.indices(len(self)))]
        length = len(self)
        if position < 0:
            position += length
        if not 0 <= position < length:
            raise IndexError(
                f"pair index {position} out of range for {length} pairs")
        with self._open() as engine:
            row = engine.query_one(
                "SELECT first, second, similarity FROM result_pairs "
                "ORDER BY pair_seq LIMIT 1 OFFSET ?", (position,))
        first, second, similarity = row
        return SimilarPair(decode_value(first), decode_value(second),
                           similarity)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StoredPairSequence):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"StoredPairSequence(path={self._path!r}, "
                f"pairs={len(self)})")
