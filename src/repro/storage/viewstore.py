"""Durable :class:`~repro.streaming.view.JoinView`\\ s: snapshot + log.

A maintained view is made crash-safe with the classic checkpoint/WAL
split, both halves living in one :class:`~repro.storage.engine.StorageEngine`
database:

* :meth:`ViewStore.snapshot` writes the view's spec, corpus and
  materialized pair map at its current version, then prunes the mutation
  log up to that version — the log only ever carries the suffix a
  recovery still needs;
* :meth:`ViewStore.append` writes one applied
  :class:`~repro.streaming.changes.ChangeBatch` in its own committed
  transaction, keyed by the view version the batch produced;
* :meth:`ViewStore.load` (surfaced as ``JoinView.recover(path)``)
  rebuilds the snapshot and replays the logged suffix **with the
  incremental strategy** — which, by the exactness property the streaming
  test suite asserts (every maintained score is a sum of integer-valued
  effective multiplicities), lands on the *bit-identical* pair set the
  lost process held after its last durable batch.

:meth:`ViewStore.attach` wires a live view to its store: it snapshots
immediately and then logs every applied batch from inside the view's
subscriber callback, so by the time ``apply()`` returns to the caller the
batch is already committed.  An optional ``snapshot_every`` folds the log
back into a fresh snapshot periodically, bounding replay time after a
crash.
"""

from __future__ import annotations

import json
import os

from repro.core.exceptions import StorageError
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair
from repro.storage.codecs import (
    VIEW_STORE,
    describe_spec,
    load_members,
    save_members,
    spec_from_description,
)
from repro.storage.engine import StorageEngine, open_engine
from repro.storage.values import decode_value, encode_value


class ViewStore:
    """The durable home of one :class:`~repro.streaming.view.JoinView`.

    Parameters
    ----------
    destination:
        Database path (opened, and closed again by :meth:`close`) or an
        already-open :class:`StorageEngine` (borrowed).
    """

    def __init__(self,
                 destination: str | os.PathLike | StorageEngine) -> None:
        self._engine, self._owned = open_engine(destination)

    # -- lifecycle -----------------------------------------------------------

    @property
    def engine(self) -> StorageEngine:
        """The underlying storage engine."""
        return self._engine

    def close(self) -> None:
        """Close the engine if this store opened it."""
        if self._owned:
            self._engine.close()

    def __enter__(self) -> "ViewStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- checkpointing -------------------------------------------------------

    def snapshot(self, view) -> None:
        """Checkpoint the view: spec + corpus + pairs at its version.

        One transaction; the mutation log is pruned up to the snapshot
        version in the same commit, so the database always describes one
        consistent (snapshot, suffix) pair.
        """
        engine = self._engine
        with engine.transaction():
            save_members(engine, VIEW_STORE, view.members())
            engine.execute("DELETE FROM view_pairs")
            engine.executemany(
                "INSERT INTO view_pairs (first, second, similarity) "
                "VALUES (?, ?, ?)",
                [(encode_value(first), encode_value(second), similarity)
                 for (first, second), similarity in view.pairs().items()])
            engine.set_meta("view", "spec", describe_spec(view.spec))
            engine.set_meta("view", "snapshot_version", str(view.version))
            engine.execute("DELETE FROM mutation_log WHERE batch_seq <= ?",
                           (view.version,))

    def append(self, batch, version: int) -> None:
        """Log one applied batch as the write that produced ``version``.

        Committed before returning — once this method exits, a crash
        cannot lose the batch.  Upsert payloads store the new multiset's
        elements in insertion order, which replay preserves (element order
        drives float accumulation order, hence bit-identical recovery).
        """
        rows = []
        for position, change in enumerate(batch):
            payload = None
            if change.multiset is not None:
                payload = json.dumps(
                    [[encode_value(element), multiplicity]
                     for element, multiplicity in change.multiset.items()],
                    separators=(",", ":"), ensure_ascii=False)
            rows.append((version, position, change.kind,
                         encode_value(change.target), payload))
        engine = self._engine
        with engine.transaction():
            engine.executemany(
                "INSERT INTO mutation_log "
                "(batch_seq, position, kind, target, payload) "
                "VALUES (?, ?, ?, ?, ?)", rows)

    def log_batches(self, after: int = 0) -> list[tuple[int, "object"]]:
        """The logged ``(version, ChangeBatch)`` suffix past ``after``."""
        from repro.streaming.changes import Change, ChangeBatch

        grouped: dict[int, list] = {}
        for batch_seq, kind, target, payload in self._engine.query(
                "SELECT batch_seq, kind, target, payload FROM mutation_log "
                "WHERE batch_seq > ? ORDER BY batch_seq, position", (after,)):
            target_id = decode_value(target)
            if payload is None:
                change = Change.delete(target_id)
            else:
                try:
                    contents = json.loads(payload)
                except (TypeError, ValueError) as error:
                    raise StorageError(
                        f"mutation log batch {batch_seq} is corrupted: "
                        f"{error}") from None
                change = Change.upsert(Multiset(
                    target_id,
                    [(decode_value(element), multiplicity)
                     for element, multiplicity in contents]))
            grouped.setdefault(batch_seq, []).append(change)
        return [(batch_seq, ChangeBatch(tuple(grouped[batch_seq])))
                for batch_seq in sorted(grouped)]

    # -- live attachment -----------------------------------------------------

    def attach(self, view, snapshot_every: int | None = None):
        """Make a live view durable: snapshot now, log every batch after.

        Registers a subscriber on the view, so each ``apply()`` commits
        its batch to the log before returning to the caller.  With
        ``snapshot_every=n``, every ``n``-th logged batch is folded into a
        fresh snapshot (pruning the log), bounding crash-replay length.
        Returns a :class:`ViewSubscription`; call its ``detach()`` to stop
        logging (the database keeps its last consistent state).
        """
        if snapshot_every is not None and snapshot_every < 1:
            raise StorageError(
                f"snapshot_every must be >= 1 when set, got {snapshot_every}")
        self.snapshot(view)
        return ViewSubscription(self, view, snapshot_every)

    def load(self, *, engine=None):
        """Rebuild the stored view: snapshot, then replay the log suffix.

        ``engine`` is an optional
        :class:`~repro.engine.engine.SimilarityEngine` handed to the
        rebuilt view for its future re-join pricing (recovery itself
        always replays incrementally).  Raises
        :class:`~repro.core.exceptions.StorageError` when the database
        holds no view or the log suffix is not contiguous with the
        snapshot.
        """
        from repro.streaming.view import INCREMENTAL, JoinView

        store_engine = self._engine
        described = store_engine.get_meta("view", "spec")
        if described is None:
            raise StorageError(
                f"{store_engine.path!r} holds no join view")
        spec = spec_from_description(described)
        members = load_members(store_engine, VIEW_STORE)
        pairs = [SimilarPair(decode_value(first), decode_value(second),
                             similarity)
                 for first, second, similarity in store_engine.query(
                     "SELECT first, second, similarity FROM view_pairs "
                     "ORDER BY first, second")]
        view = JoinView(spec, members, pairs=pairs, engine=engine)
        snapshot_version = int(
            store_engine.get_meta("view", "snapshot_version") or "0")
        view._version = snapshot_version
        for batch_seq, batch in self.log_batches(after=snapshot_version):
            if batch_seq != view.version + 1:
                raise StorageError(
                    f"mutation log is not contiguous: snapshot at version "
                    f"{snapshot_version}, next logged batch is {batch_seq} "
                    f"but the view is at {view.version}")
            view.apply(batch, strategy=INCREMENTAL)
        return view


class ViewSubscription:
    """One live view→store wiring; created by :meth:`ViewStore.attach`."""

    def __init__(self, store: ViewStore, view,
                 snapshot_every: int | None) -> None:
        self._store = store
        self._view = view
        self._snapshot_every = snapshot_every
        self._since_snapshot = 0
        self._active = True
        self._callback = view.subscribe(self._on_batch)

    def _on_batch(self, view, batch, deltas) -> None:
        self._store.append(batch, view.version)
        self._since_snapshot += 1
        if (self._snapshot_every is not None
                and self._since_snapshot >= self._snapshot_every):
            self._store.snapshot(view)
            self._since_snapshot = 0

    @property
    def active(self) -> bool:
        """Whether batches are still being logged."""
        return self._active

    def detach(self) -> None:
        """Stop logging (idempotent); the stored state stays consistent.

        Also closes the store's engine when the store owns it (a store
        built on a borrowed :class:`StorageEngine` leaves it open).
        """
        if self._active:
            self._view.unsubscribe(self._callback)
            self._active = False
            self._store.close()
