"""Exact round-trip encoding of identifiers and elements for storage.

Multiset identifiers and alphabet elements are arbitrary *hashables*
throughout the package (IP strings, cookie strings, integer ids, tuples of
either).  SQLite columns are not — so the storage tier stores every
identifier and element through one tagged text encoding that round-trips
**exactly**:

* ``None``, ``bool``, ``int`` (arbitrary precision), ``float`` (via
  ``repr``, which round-trips IEEE doubles bit for bit, including
  ``inf``/``nan``), ``str`` and ``bytes``;
* ``tuple`` and ``frozenset`` of the above, recursively (frozensets are
  serialised in a deterministic order so equal values encode equally).

Anything else — an unhashable value could never be an identifier, and an
arbitrary object could not be restored faithfully — raises
:class:`~repro.core.exceptions.StorageError` at *save* time, which is the
moment the caller can still fix its data model.

The encoded form is a compact JSON document (``["s","ip-1"]``,
``["t",[["s","ip"],["i",3]]]``), chosen over pickle deliberately: it is
queryable with plain SQL, diffable, safe to load from an untrusted file,
and identical across Python versions.
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.core.exceptions import StorageError

#: One-letter type tags of the encoded form.
_NONE, _BOOL, _INT, _FLOAT, _STR, _BYTES, _TUPLE, _FROZENSET = (
    "z", "b", "i", "f", "s", "y", "t", "F")


def _encode(value: Hashable) -> list:
    if value is None:
        return [_NONE]
    if isinstance(value, bool):  # before int: bool is an int subclass
        return [_BOOL, 1 if value else 0]
    if isinstance(value, int):
        return [_INT, str(value)]
    if isinstance(value, float):
        return [_FLOAT, repr(value)]
    if isinstance(value, str):
        return [_STR, value]
    if isinstance(value, bytes):
        return [_BYTES, value.hex()]
    if isinstance(value, tuple):
        return [_TUPLE, [_encode(item) for item in value]]
    if isinstance(value, frozenset):
        encoded = sorted((_encode(item) for item in value),
                         key=lambda item: json.dumps(item, sort_keys=True))
        return [_FROZENSET, encoded]
    raise StorageError(
        f"cannot persist a value of type {type(value).__name__}: {value!r}; "
        "storable identifiers and elements are built from None, bool, int, "
        "float, str, bytes, tuple and frozenset")


def _decode(structure: list) -> Hashable:
    tag = structure[0]
    if tag == _NONE:
        return None
    if tag == _BOOL:
        return bool(structure[1])
    if tag == _INT:
        return int(structure[1])
    if tag == _FLOAT:
        return float(structure[1])
    if tag == _STR:
        return structure[1]
    if tag == _BYTES:
        return bytes.fromhex(structure[1])
    if tag == _TUPLE:
        return tuple(_decode(item) for item in structure[1])
    if tag == _FROZENSET:
        return frozenset(_decode(item) for item in structure[1])
    raise StorageError(f"unknown storage value tag {tag!r}")


def encode_value(value: Hashable) -> str:
    """Encode an identifier or element into its stored text form."""
    return json.dumps(_encode(value), separators=(",", ":"),
                      ensure_ascii=False)


def decode_value(text: str) -> Hashable:
    """Decode a stored text form back into the exact original value."""
    try:
        structure = json.loads(text)
    except (TypeError, ValueError) as error:
        raise StorageError(
            f"stored value {text!r} is not a valid encoding: {error}") from None
    if not isinstance(structure, list) or not structure:
        raise StorageError(f"stored value {text!r} is not a tagged encoding")
    return _decode(structure)
