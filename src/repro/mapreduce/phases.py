"""Self-contained phase tasks executed by the pluggable backends.

The runner splits every job into *tasks*: contiguous chunks of the input for
the map phase, batches of mapper machines for the combine phase and batches
of reduce partitions for the reduce phase.  Each task carries everything it
needs (the job, its slice of the data and the accounting parameters), is
executed by a module-level function — so tasks can be shipped to worker
processes by pickling — and returns both its emissions and an exact
:class:`~repro.mapreduce.types.PhaseStats` partial.

All partial statistics are integer-valued, so merging them (sums and maxes)
reproduces the serial runner's :class:`~repro.mapreduce.types.JobStats`
bit-for-bit regardless of how the work was split across workers.  Map and
combine tasks also pre-partition their output into per-worker *spill
dictionaries* (``partition -> key -> records``); the runner merges those in
task order, which reproduces the serial shuffle's first-occurrence key order
because task slices are contiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.exceptions import MemoryBudgetExceeded
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec, TaskContext, iterate_emissions
from repro.mapreduce.types import KeyValue, PhaseStats, estimate_record_bytes

#: The shuffle's spill structure: reduce partition -> key -> records.
Spill = dict[int, dict[Any, list[KeyValue]]]


def check_memory_budget(job_name: str, what: str, required: int,
                        budget: int | None) -> None:
    """Raise :class:`MemoryBudgetExceeded` when ``required`` exceeds ``budget``.

    ``budget`` is ``None`` when budget enforcement is disabled.
    """
    if budget is None or required <= budget:
        return
    raise MemoryBudgetExceeded(
        f"job {job_name!r}: {what} needs {required} bytes but each "
        f"machine only has {budget} bytes of memory",
        required_bytes=required, budget_bytes=budget)


def spill_record(spill: Spill, partition: int, key_value: KeyValue) -> None:
    """Append one record to a spill dictionary.

    This runs once per map/combine emission; the explicit ``get`` probes
    avoid ``setdefault``'s unconditional empty-container allocations on the
    (overwhelmingly common) hit path.
    """
    groups = spill.get(partition)
    if groups is None:
        groups = spill[partition] = {}
    records = groups.get(key_value.key)
    if records is None:
        groups[key_value.key] = [key_value]
    else:
        records.append(key_value)


def merge_spills(target: Spill, source: Spill) -> None:
    """Merge one task's spill into the accumulated shuffle, preserving order."""
    for partition, groups in source.items():
        target_groups = target.setdefault(partition, {})
        for key, key_values in groups.items():
            existing = target_groups.get(key)
            if existing is None:
                target_groups[key] = list(key_values)
            else:
                existing.extend(key_values)


# -- map tasks ----------------------------------------------------------------


@dataclass
class MapTask:
    """One contiguous slice of the input records, mapped as a single task."""

    job: JobSpec
    records: tuple
    start_index: int
    num_machines: int
    overhead: int
    num_reducers: int
    #: Whether to pre-partition the map output for the shuffle (map-side
    #: spill); disabled when a combiner will rewrite the output anyway.
    build_spill: bool


@dataclass
class MapTaskResult:
    """Emissions and exact accounting for one executed :class:`MapTask`.

    ``emissions`` and ``spill`` are mutually exclusive: with
    ``build_spill`` the runner consumes only the pre-partitioned spill, so
    the flat emission list is not materialised (halving what a process
    worker ships back); without it the flat list is the product.  Cleanup
    emissions are always returned flat — the runner partitions them last,
    mirroring their position at the end of the serial runner's single pass.
    """

    emissions: list[KeyValue]
    cleanup_emissions: list[KeyValue]
    spill: Spill | None
    phase: PhaseStats
    max_input_record: int
    max_output_record: int
    counters: dict[str, int]


def execute_map_task(task: MapTask) -> MapTaskResult:
    """Run the mapper over one slice of the input, mirroring the serial loop."""
    job = task.job
    counters = Counters()
    context = TaskContext(counters, job.side_data, task.num_machines, job.name)
    job.mapper.setup(context)
    phase = PhaseStats()
    emissions: list[KeyValue] = []
    spill: Spill | None = {} if task.build_spill else None
    max_input_record = 0
    max_output_record = 0
    for offset, record in enumerate(task.records):
        machine = (task.start_index + offset) % task.num_machines
        bytes_in = estimate_record_bytes(record)
        max_input_record = max(max_input_record, bytes_in)
        bytes_out = 0
        emitted_count = 0
        for key_value in iterate_emissions(job.mapper.map(record, context)):
            size = estimate_record_bytes(key_value)
            bytes_out += size
            max_output_record = max(max_output_record, size)
            if spill is None:
                emissions.append(key_value)
            else:
                spill_record(spill, job.partitioner(key_value.key, task.num_reducers),
                             key_value)
            emitted_count += 1
        work = bytes_in + bytes_out + task.overhead * (1 + emitted_count)
        phase.records_in += 1
        phase.records_out += emitted_count
        phase.bytes_in += bytes_in
        phase.bytes_out += bytes_out
        phase.add_machine_work(machine, work)
    cleanup_emissions: list[KeyValue] = []
    cleanup_bytes = 0
    for key_value in iterate_emissions(job.mapper.cleanup(context)):
        size = estimate_record_bytes(key_value)
        cleanup_bytes += size
        max_output_record = max(max_output_record, size)
        cleanup_emissions.append(key_value)
    if cleanup_emissions:
        phase.records_out += len(cleanup_emissions)
        phase.bytes_out += cleanup_bytes
        phase.add_machine_work(0, cleanup_bytes + task.overhead * len(cleanup_emissions))
    return MapTaskResult(emissions=emissions, cleanup_emissions=cleanup_emissions,
                         spill=spill, phase=phase,
                         max_input_record=max_input_record,
                         max_output_record=max_output_record,
                         counters=counters.as_dict())


# -- combine tasks ------------------------------------------------------------


@dataclass
class CombineTask:
    """A batch of mapper machines whose output is combined as one task.

    ``machines`` holds ``(machine, groups)`` entries in ascending machine
    order, where ``groups`` maps ``(key, secondary)`` to that machine's
    records for the group.
    """

    job: JobSpec
    machines: list[tuple[int, dict[tuple, list[KeyValue]]]]
    num_machines: int
    overhead: int
    num_reducers: int
    build_spill: bool


@dataclass
class CombineMachineOutput:
    """The combined output and accounting of one mapper machine."""

    machine: int
    combined: list[KeyValue]
    records_in: int
    records_out: int
    bytes_in: int
    bytes_out: int
    work: int


@dataclass
class CombineTaskResult:
    """Per-machine outputs and accounting for one :class:`CombineTask`."""

    outputs: list[CombineMachineOutput]
    spill: Spill | None
    counters: dict[str, int]


def execute_combine_task(task: CombineTask) -> CombineTaskResult:
    """Run the dedicated combiner over a batch of mapper machines."""
    job = task.job
    combiner = job.combiner
    assert combiner is not None
    counters = Counters()
    context = TaskContext(counters, job.side_data, task.num_machines, job.name)
    spill: Spill | None = {} if task.build_spill else None
    outputs: list[CombineMachineOutput] = []
    for machine, groups in task.machines:
        machine_bytes_in = 0
        machine_bytes_out = 0
        records_in = 0
        records_out = 0
        combined: list[KeyValue] = []
        for (key, secondary), key_values in groups.items():
            values = [kv.value for kv in key_values]
            machine_bytes_in += sum(estimate_record_bytes(kv) for kv in key_values)
            records_in += len(values)
            for value in combiner.combine(key, values, context):
                new_kv = KeyValue(key, value, secondary)
                # As for map tasks: either the flat output or the spill is
                # the product, never both.
                if spill is None:
                    combined.append(new_kv)
                else:
                    spill_record(spill, job.partitioner(key, task.num_reducers), new_kv)
                machine_bytes_out += estimate_record_bytes(new_kv)
                records_out += 1
        work = machine_bytes_in + machine_bytes_out + task.overhead * records_in
        outputs.append(CombineMachineOutput(
            machine=machine, combined=combined,
            records_in=records_in, records_out=records_out,
            bytes_in=machine_bytes_in, bytes_out=machine_bytes_out, work=work))
    return CombineTaskResult(outputs=outputs, spill=spill,
                             counters=counters.as_dict())


# -- reduce tasks -------------------------------------------------------------


@dataclass
class ReduceTask:
    """A batch of reduce partitions executed as one task.

    ``partitions`` holds ``(partition, groups)`` entries in ascending
    partition order, where ``groups`` maps each reduce key to its (already
    secondary-sorted) reduce value list.
    """

    job: JobSpec
    partitions: list[tuple[int, dict[Any, list[KeyValue]]]]
    num_machines: int
    overhead: int
    #: Per-machine memory budget, or ``None`` when enforcement is disabled.
    memory_budget: int | None


@dataclass
class ReduceTaskResult:
    """Output records and exact accounting for one :class:`ReduceTask`."""

    output_records: list[Any]
    phase: PhaseStats
    reduce_groups: int
    max_group_records: int
    max_group_bytes: int
    peak_task_memory: int
    counters: dict[str, int]


def execute_reduce_task(task: ReduceTask) -> ReduceTaskResult:
    """Run the reducer over a batch of partitions, mirroring the serial loop."""
    job = task.job
    reducer = job.reducer
    assert reducer is not None
    counters = Counters()
    context = TaskContext(counters, job.side_data, task.num_machines, job.name)
    reducer.setup(context)
    phase = PhaseStats()
    output_records: list[Any] = []
    reduce_groups = 0
    max_group_records = 0
    max_group_bytes = 0
    peak_task_memory = 0
    for partition, groups in task.partitions:
        machine = partition % task.num_machines
        for key, key_values in groups.items():
            values = [kv.value for kv in key_values]
            bytes_in = sum(estimate_record_bytes(kv) for kv in key_values)
            reduce_groups += 1
            max_group_records = max(max_group_records, len(values))
            max_group_bytes = max(max_group_bytes, bytes_in)
            if reducer.materializes_input:
                # Side data is loaded by the mappers of the jobs in this
                # library, so the reducer budget covers only the
                # materialised value list.
                peak_task_memory = max(peak_task_memory, bytes_in)
                check_memory_budget(job.name, f"reduce value list of key {key!r}",
                                    bytes_in, task.memory_budget)
            bytes_out = 0
            records_out = 0
            for record in reducer.reduce(key, values, context):
                output_records.append(record)
                bytes_out += estimate_record_bytes(record)
                records_out += 1
            work = bytes_in + bytes_out + task.overhead * len(values)
            phase.records_in += len(values)
            phase.records_out += records_out
            phase.bytes_in += bytes_in
            phase.bytes_out += bytes_out
            phase.add_machine_work(machine, work)
    cleanup_bytes = 0
    cleanup_count = 0
    for record in reducer.cleanup(context):
        output_records.append(record)
        cleanup_bytes += estimate_record_bytes(record)
        cleanup_count += 1
    if cleanup_count:
        phase.records_out += cleanup_count
        phase.bytes_out += cleanup_bytes
        phase.add_machine_work(0, cleanup_bytes + task.overhead * cleanup_count)
    return ReduceTaskResult(output_records=output_records, phase=phase,
                            reduce_groups=reduce_groups,
                            max_group_records=max_group_records,
                            max_group_bytes=max_group_bytes,
                            peak_task_memory=peak_task_memory,
                            counters=counters.as_dict())


def split_slices(count: int, pieces: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into at most ``pieces`` contiguous slices.

    Returns ``(start, stop)`` pairs covering the range in order.  An empty
    range yields a single empty slice so that per-task lifecycle hooks
    (mapper/reducer setup and cleanup) still run exactly once on the serial
    backend, matching the original runner.
    """
    if count <= 0:
        return [(0, 0)]
    pieces = max(1, min(pieces, count))
    bounds = [(count * index) // pieces for index in range(pieces + 1)]
    return [(bounds[index], bounds[index + 1]) for index in range(pieces)]
