"""Local execution engine for simulated MapReduce jobs.

:class:`LocalJobRunner` executes a :class:`~repro.mapreduce.job.JobSpec`
against a :class:`~repro.mapreduce.dfs.Dataset` on a simulated
:class:`~repro.mapreduce.cluster.Cluster`.  Results are exact — every mapper
and reducer really runs — while the *performance* of the run is modelled:

* input records are spread round-robin over the cluster's machines to
  account per-machine map work;
* dedicated combiners run per mapper machine and shrink the shuffle volume;
* the shuffle groups records by key (hash partitioned to ``num_reducers``
  partitions, one partition per machine by default) and optionally sorts
  each group by the secondary key;
* per-machine memory and disk budgets are enforced, raising
  :class:`~repro.core.exceptions.MemoryBudgetExceeded` /
  :class:`~repro.core.exceptions.DiskBudgetExceeded` in the situations the
  paper describes (lookup tables or frequency-sorted alphabets that do not
  fit, reduce value lists that must be materialised);
* the cost model converts the measured loads into a simulated run time, and
  the scheduler kills jobs whose simulated time exceeds the cluster limit
  (as happened to the VCL kernel mappers in the paper).

Where the work *actually* runs is pluggable: the runner splits every phase
into self-contained tasks (:mod:`repro.mapreduce.phases`) and hands them to
an :class:`~repro.mapreduce.backends.ExecutionBackend` — serially (the
default), on a thread pool or on a multiprocessing pool.  Task partials are
integer-valued and merged deterministically, so results, counters and
simulated times are identical across backends; only wall-clock time changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.exceptions import (
    DiskBudgetExceeded,
    JobTimeoutError,
    UnsupportedFeatureError,
)
from repro.mapreduce.backends import ExecutionBackend, get_backend
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.costmodel import (
    DEFAULT_COST_PARAMETERS,
    CostModel,
    CostParameters,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.job import JobSpec
from repro.mapreduce.phases import (
    CombineTask,
    MapTask,
    ReduceTask,
    Spill,
    check_memory_budget,
    execute_combine_task,
    execute_map_task,
    execute_reduce_task,
    merge_spills,
    spill_record,
    split_slices,
)
from repro.mapreduce.types import JobStats, KeyValue, estimate_record_bytes


@dataclass
class JobResult:
    """The output dataset and statistics of one executed job."""

    output: Dataset
    stats: JobStats

    @property
    def simulated_seconds(self) -> float:
        """Simulated run time of the job."""
        return self.stats.simulated_seconds


@dataclass
class PipelineResult:
    """The output and per-job statistics of a multi-job pipeline."""

    name: str
    output: Dataset
    job_stats: list[JobStats] = field(default_factory=list)
    artifacts: dict[str, Any] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated run time across all jobs of the pipeline."""
        return sum(stats.simulated_seconds for stats in self.job_stats)

    def stats_for(self, job_name: str) -> JobStats:
        """Return the statistics of the job called ``job_name``."""
        for stats in self.job_stats:
            if stats.job_name == job_name:
                return stats
        available = ", ".join(repr(stats.job_name) for stats in self.job_stats)
        raise KeyError(f"no job named {job_name!r} in pipeline {self.name!r}; "
                       f"available jobs: {available or '(none)'}")

    def counters(self) -> dict[str, int]:
        """Return all counters summed across the pipeline's jobs."""
        merged: dict[str, int] = {}
        for stats in self.job_stats:
            for key, value in stats.counters.items():
                merged[key] = merged.get(key, 0) + value
        return merged


class LocalJobRunner:
    """Execute simulated MapReduce jobs on a cluster description.

    ``backend`` selects where mapper/combiner/reducer work physically runs
    (``"serial"``, ``"thread"``, ``"process"`` or an
    :class:`~repro.mapreduce.backends.ExecutionBackend` instance); see
    :mod:`repro.mapreduce.backends`.  The runner owns backends it creates
    from a name and releases them in :meth:`close`; backend instances passed
    in are borrowed and left for the caller to close.
    """

    def __init__(self, cluster: Cluster,
                 cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                 enforce_budgets: bool = True,
                 backend: str | ExecutionBackend = "serial") -> None:
        self.cluster = cluster
        self.cost_parameters = cost_parameters
        self.cost_model = CostModel(cost_parameters)
        self.enforce_budgets = enforce_budgets
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = get_backend(backend)

    def close(self) -> None:
        """Release the runner's backend when the runner created it."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "LocalJobRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API ----------------------------------------------------------

    def run(self, job: JobSpec, dataset: Dataset) -> JobResult:
        """Run one job over ``dataset`` and return its output and stats."""
        self._check_profile(job)
        stats = JobStats(job_name=job.name, num_machines=self.cluster.num_machines)
        counters = Counters()

        side_data_bytes = self._side_data_bytes(job)
        stats.side_data_bytes = side_data_bytes
        self._check_memory(job.name, "side data", side_data_bytes)

        num_reducers = job.num_reducers or self.cluster.num_machines

        # A backend may take over the whole phase sequence (out-of-core
        # shuffle, SQL pushdown); ``None`` — not an empty output — selects
        # the generic task-splitting path below.
        output_records = self.backend.execute_phases(
            self, job, dataset, stats, counters, num_reducers)
        if output_records is None:
            output_records = self._execute_phases(job, dataset, stats,
                                                  counters, num_reducers)

        self._check_disk(job.name, stats)
        stats.merge_counters(counters.as_dict())
        self.cost_model.annotate(stats, self.cluster)
        self._check_scheduler(job.name, stats)
        output = Dataset(f"{job.name}:output", output_records)
        return JobResult(output=output, stats=stats)

    # -- phases ---------------------------------------------------------------

    def _execute_phases(self, job: JobSpec, dataset: Dataset,
                        stats: JobStats, counters: Counters,
                        num_reducers: int) -> list[Any]:
        """The generic map / combine / shuffle / reduce sequence."""
        want_shuffle = job.reducer is not None

        map_output, spill = self._run_map_phase(
            job, dataset, stats, counters, num_reducers,
            build_spill=want_shuffle and job.combiner is None)
        if job.combiner is not None:
            map_output, spill = self._run_combine_phase(
                job, map_output, stats, counters, num_reducers,
                build_spill=want_shuffle)

        # The shuffle moves (and spills once on the map side) exactly the
        # bytes the last map-side phase emitted.
        stats.shuffle_bytes = (stats.combine.bytes_out if job.combiner is not None
                               else stats.map.bytes_out)
        stats.spilled_bytes = stats.shuffle_bytes

        if job.reducer is None:
            return [kv for kv in map_output]
        assert spill is not None
        partitions = self._finish_shuffle(job, spill)
        return self._run_reduce_phase(job, partitions, stats, counters)

    def _run_map_phase(self, job: JobSpec, dataset: Dataset,
                       stats: JobStats, counters: Counters,
                       num_reducers: int,
                       build_spill: bool) -> tuple[list[KeyValue], Spill | None]:
        records = tuple(dataset)
        overhead = self.cost_parameters.record_overhead_bytes
        machines = self.cluster.num_machines
        tasks = [MapTask(job=job, records=records[start:stop], start_index=start,
                         num_machines=machines, overhead=overhead,
                         num_reducers=num_reducers, build_spill=build_spill)
                 for start, stop in split_slices(len(records),
                                                 self.backend.num_workers)]
        results = self.backend.run_tasks(execute_map_task, tasks)

        map_output: list[KeyValue] = []
        cleanup_emissions: list[KeyValue] = []
        spill: Spill | None = {} if build_spill else None
        max_input_record = 0
        max_output_record = 0
        for result in results:
            map_output.extend(result.emissions)
            cleanup_emissions.extend(result.cleanup_emissions)
            if spill is not None and result.spill is not None:
                merge_spills(spill, result.spill)
            stats.map.merge(result.phase)
            max_input_record = max(max_input_record, result.max_input_record)
            max_output_record = max(max_output_record, result.max_output_record)
            counters.merge_dict(result.counters)
        map_output.extend(cleanup_emissions)
        if spill is not None:
            # Cleanup emissions enter the shuffle last, as in the serial
            # runner's single pass over the full map output.
            for key_value in cleanup_emissions:
                spill_record(spill, job.partitioner(key_value.key, num_reducers),
                             key_value)

        task_memory = stats.side_data_bytes + max_input_record + max_output_record
        stats.peak_task_memory = max(stats.peak_task_memory, task_memory)
        self._check_memory(job.name, "map task working set", task_memory)
        return map_output, spill

    def _run_combine_phase(self, job: JobSpec, map_output: list[KeyValue],
                           stats: JobStats, counters: Counters,
                           num_reducers: int,
                           build_spill: bool) -> tuple[list[KeyValue], Spill | None]:
        machines = self.cluster.num_machines
        overhead = self.cost_parameters.record_overhead_bytes
        # Dedicated combiners run on the mapper machines: group this
        # machine's output by (key, secondary) and combine each group.
        per_machine: dict[int, dict[tuple, list[KeyValue]]] = {}
        for index, key_value in enumerate(map_output):
            machine = index % machines
            group_key = (key_value.key, key_value.secondary)
            per_machine.setdefault(machine, {}).setdefault(group_key, []).append(key_value)
        machine_items = sorted(per_machine.items())
        tasks = [CombineTask(job=job, machines=machine_items[start:stop],
                             num_machines=machines, overhead=overhead,
                             num_reducers=num_reducers, build_spill=build_spill)
                 for start, stop in split_slices(len(machine_items),
                                                 self.backend.num_workers)
                 if stop > start]
        results = self.backend.run_tasks(execute_combine_task, tasks)

        combined: list[KeyValue] = []
        spill: Spill | None = {} if build_spill else None
        for result in results:
            for output in result.outputs:
                combined.extend(output.combined)
                stats.combine.records_in += output.records_in
                stats.combine.records_out += output.records_out
                stats.combine.bytes_in += output.bytes_in
                stats.combine.bytes_out += output.bytes_out
                stats.combine.add_machine_work(output.machine, output.work)
                # Combining happens on the mapper machine; fold it into map
                # work so the cost model charges the same machine.
                stats.map.add_machine_work(output.machine, output.work)
            if spill is not None and result.spill is not None:
                merge_spills(spill, result.spill)
            counters.merge_dict(result.counters)
        return combined, spill

    def _finish_shuffle(self, job: JobSpec,
                        spill: Spill) -> dict[int, dict[Any, list[KeyValue]]]:
        sort_by_secondary = (job.requires_secondary_keys
                             and self.cluster.profile.supports_secondary_keys)
        if sort_by_secondary:
            for groups in spill.values():
                for key_values in groups.values():
                    key_values.sort(key=lambda kv: (kv.secondary is None, kv.secondary))
        return spill

    def _run_reduce_phase(self, job: JobSpec,
                          partitions: dict[int, dict[Any, list[KeyValue]]],
                          stats: JobStats, counters: Counters) -> list[Any]:
        overhead = self.cost_parameters.record_overhead_bytes
        machines = self.cluster.num_machines
        budget = self.cluster.memory_per_machine if self.enforce_budgets else None
        partition_items = [(partition, partitions[partition])
                           for partition in sorted(partitions)]
        tasks = [ReduceTask(job=job, partitions=partition_items[start:stop],
                            num_machines=machines, overhead=overhead,
                            memory_budget=budget)
                 for start, stop in split_slices(len(partition_items),
                                                 self.backend.num_workers)]
        results = self.backend.run_tasks(execute_reduce_task, tasks)

        output_records: list[Any] = []
        for result in results:
            output_records.extend(result.output_records)
            stats.reduce.merge(result.phase)
            stats.reduce_groups += result.reduce_groups
            stats.max_group_records = max(stats.max_group_records,
                                          result.max_group_records)
            stats.max_group_bytes = max(stats.max_group_bytes,
                                        result.max_group_bytes)
            stats.peak_task_memory = max(stats.peak_task_memory,
                                         result.peak_task_memory)
            counters.merge_dict(result.counters)
        return output_records

    # -- budget and profile checks --------------------------------------------

    def _check_profile(self, job: JobSpec) -> None:
        if job.requires_secondary_keys and not self.cluster.profile.supports_secondary_keys:
            raise UnsupportedFeatureError(
                f"job {job.name!r} requires secondary keys, which the "
                f"{self.cluster.profile.name!r} engine profile does not support")

    def _side_data_bytes(self, job: JobSpec) -> int:
        if job.side_data is None:
            return 0
        if job.side_data_bytes is not None:
            return int(job.side_data_bytes)
        return estimate_record_bytes(job.side_data)

    def _check_memory(self, job_name: str, what: str, required: int) -> None:
        budget = self.cluster.memory_per_machine if self.enforce_budgets else None
        check_memory_budget(job_name, what, required, budget)

    def _check_disk(self, job_name: str, stats: JobStats) -> None:
        if not self.enforce_budgets:
            return
        per_machine = (2 * stats.shuffle_bytes) // max(1, self.cluster.num_machines)
        budget = self.cluster.disk_per_machine
        if per_machine > budget:
            raise DiskBudgetExceeded(
                f"job {job_name!r}: intermediate data needs about {per_machine} "
                f"bytes of disk per machine but the budget is {budget} bytes",
                required_bytes=per_machine, budget_bytes=budget)

    def _check_scheduler(self, job_name: str, stats: JobStats) -> None:
        limit = self.cluster.scheduler_limit_seconds
        if stats.simulated_seconds > limit:
            raise JobTimeoutError(
                f"job {job_name!r} would run for {stats.simulated_seconds:.0f} "
                f"simulated seconds, exceeding the scheduler limit of "
                f"{limit:.0f} seconds; the scheduler killed it",
                simulated_seconds=stats.simulated_seconds, limit_seconds=limit)
