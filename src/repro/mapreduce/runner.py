"""Local execution engine for simulated MapReduce jobs.

:class:`LocalJobRunner` executes a :class:`~repro.mapreduce.job.JobSpec`
against a :class:`~repro.mapreduce.dfs.Dataset` on a simulated
:class:`~repro.mapreduce.cluster.Cluster`.  Results are exact — every mapper
and reducer really runs — while the *performance* of the run is modelled:

* input records are spread round-robin over the cluster's machines to
  account per-machine map work;
* dedicated combiners run per mapper machine and shrink the shuffle volume;
* the shuffle groups records by key (hash partitioned to ``num_reducers``
  partitions, one partition per machine by default) and optionally sorts
  each group by the secondary key;
* per-machine memory and disk budgets are enforced, raising
  :class:`~repro.core.exceptions.MemoryBudgetExceeded` /
  :class:`~repro.core.exceptions.DiskBudgetExceeded` in the situations the
  paper describes (lookup tables or frequency-sorted alphabets that do not
  fit, reduce value lists that must be materialised);
* the cost model converts the measured loads into a simulated run time, and
  the scheduler kills jobs whose simulated time exceeds the cluster limit
  (as happened to the VCL kernel mappers in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.exceptions import (
    DiskBudgetExceeded,
    JobTimeoutError,
    MemoryBudgetExceeded,
    UnsupportedFeatureError,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.costmodel import (
    DEFAULT_COST_PARAMETERS,
    CostModel,
    CostParameters,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.job import JobSpec, TaskContext, iterate_emissions
from repro.mapreduce.types import JobStats, KeyValue, estimate_record_bytes


@dataclass
class JobResult:
    """The output dataset and statistics of one executed job."""

    output: Dataset
    stats: JobStats

    @property
    def simulated_seconds(self) -> float:
        """Simulated run time of the job."""
        return self.stats.simulated_seconds


@dataclass
class PipelineResult:
    """The output and per-job statistics of a multi-job pipeline."""

    name: str
    output: Dataset
    job_stats: list[JobStats] = field(default_factory=list)
    artifacts: dict[str, Any] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated run time across all jobs of the pipeline."""
        return sum(stats.simulated_seconds for stats in self.job_stats)

    def stats_for(self, job_name: str) -> JobStats:
        """Return the statistics of the job called ``job_name``."""
        for stats in self.job_stats:
            if stats.job_name == job_name:
                return stats
        raise KeyError(f"no job named {job_name!r} in pipeline {self.name!r}")

    def counters(self) -> dict[str, int]:
        """Return all counters summed across the pipeline's jobs."""
        merged: dict[str, int] = {}
        for stats in self.job_stats:
            for key, value in stats.counters.items():
                merged[key] = merged.get(key, 0) + value
        return merged


class LocalJobRunner:
    """Execute simulated MapReduce jobs on a cluster description."""

    def __init__(self, cluster: Cluster,
                 cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                 enforce_budgets: bool = True) -> None:
        self.cluster = cluster
        self.cost_parameters = cost_parameters
        self.cost_model = CostModel(cost_parameters)
        self.enforce_budgets = enforce_budgets

    # -- public API ----------------------------------------------------------

    def run(self, job: JobSpec, dataset: Dataset) -> JobResult:
        """Run one job over ``dataset`` and return its output and stats."""
        self._check_profile(job)
        stats = JobStats(job_name=job.name, num_machines=self.cluster.num_machines)
        counters = Counters()

        side_data_bytes = self._side_data_bytes(job)
        stats.side_data_bytes = side_data_bytes
        self._check_memory(job.name, "side data",
                           side_data_bytes, stats)

        map_output = self._run_map_phase(job, dataset, stats, counters)
        map_output = self._run_combine_phase(job, map_output, stats, counters)
        groups = self._shuffle(job, map_output, stats)

        if job.reducer is None:
            output_records: list[Any] = [kv for kv in map_output]
        else:
            output_records = self._run_reduce_phase(job, groups, stats, counters)

        self._check_disk(job.name, stats)
        stats.merge_counters(counters.as_dict())
        self.cost_model.annotate(stats, self.cluster)
        self._check_scheduler(job.name, stats)
        output = Dataset(f"{job.name}:output", output_records)
        return JobResult(output=output, stats=stats)

    # -- phases ---------------------------------------------------------------

    def _run_map_phase(self, job: JobSpec, dataset: Dataset,
                       stats: JobStats, counters: Counters) -> list[KeyValue]:
        context = TaskContext(counters, job.side_data,
                              self.cluster.num_machines, job.name)
        job.mapper.setup(context)
        overhead = self.cost_parameters.record_overhead_bytes
        machines = self.cluster.num_machines
        map_output: list[KeyValue] = []
        max_input_record = 0
        max_output_record = 0
        for index, record in enumerate(dataset):
            machine = index % machines
            bytes_in = estimate_record_bytes(record)
            max_input_record = max(max_input_record, bytes_in)
            bytes_out = 0
            emitted_count = 0
            for key_value in iterate_emissions(job.mapper.map(record, context)):
                size = estimate_record_bytes(key_value)
                bytes_out += size
                max_output_record = max(max_output_record, size)
                map_output.append(key_value)
                emitted_count += 1
            work = bytes_in + bytes_out + overhead * (1 + emitted_count)
            stats.map.records_in += 1
            stats.map.records_out += emitted_count
            stats.map.bytes_in += bytes_in
            stats.map.bytes_out += bytes_out
            stats.map.add_machine_work(machine, work)
        cleanup_bytes = 0
        cleanup_count = 0
        for key_value in iterate_emissions(job.mapper.cleanup(context)):
            size = estimate_record_bytes(key_value)
            cleanup_bytes += size
            max_output_record = max(max_output_record, size)
            map_output.append(key_value)
            cleanup_count += 1
        if cleanup_count:
            stats.map.records_out += cleanup_count
            stats.map.bytes_out += cleanup_bytes
            stats.map.add_machine_work(0, cleanup_bytes + overhead * cleanup_count)

        task_memory = stats.side_data_bytes + max_input_record + max_output_record
        stats.peak_task_memory = max(stats.peak_task_memory, task_memory)
        self._check_memory(job.name, "map task working set", task_memory, stats)
        return map_output

    def _run_combine_phase(self, job: JobSpec, map_output: list[KeyValue],
                           stats: JobStats, counters: Counters) -> list[KeyValue]:
        if job.combiner is None:
            return map_output
        context = TaskContext(counters, job.side_data,
                              self.cluster.num_machines, job.name)
        overhead = self.cost_parameters.record_overhead_bytes
        machines = self.cluster.num_machines
        # Dedicated combiners run on the mapper machines: group this
        # machine's output by (key, secondary) and combine each group.
        per_machine: dict[int, dict[tuple, list[KeyValue]]] = {}
        for index, key_value in enumerate(map_output):
            machine = index % machines
            group_key = (key_value.key, key_value.secondary)
            per_machine.setdefault(machine, {}).setdefault(group_key, []).append(key_value)
        combined: list[KeyValue] = []
        for machine, groups in sorted(per_machine.items()):
            machine_bytes_in = 0
            machine_bytes_out = 0
            records_in = 0
            records_out = 0
            for (key, secondary), key_values in groups.items():
                values = [kv.value for kv in key_values]
                machine_bytes_in += sum(estimate_record_bytes(kv) for kv in key_values)
                records_in += len(values)
                for value in job.combiner.combine(key, values, context):
                    new_kv = KeyValue(key, value, secondary)
                    combined.append(new_kv)
                    machine_bytes_out += estimate_record_bytes(new_kv)
                    records_out += 1
            stats.combine.records_in += records_in
            stats.combine.records_out += records_out
            stats.combine.bytes_in += machine_bytes_in
            stats.combine.bytes_out += machine_bytes_out
            work = machine_bytes_in + machine_bytes_out + overhead * records_in
            stats.combine.add_machine_work(machine, work)
            # Combining happens on the mapper machine; fold it into map work
            # so the cost model charges the same machine.
            stats.map.add_machine_work(machine, work)
        return combined

    def _shuffle(self, job: JobSpec, map_output: list[KeyValue],
                 stats: JobStats) -> dict[int, dict[Any, list[KeyValue]]]:
        num_reducers = job.num_reducers or self.cluster.num_machines
        partitions: dict[int, dict[Any, list[KeyValue]]] = {}
        shuffle_bytes = 0
        for key_value in map_output:
            partition = job.partitioner(key_value.key, num_reducers)
            shuffle_bytes += estimate_record_bytes(key_value)
            partitions.setdefault(partition, {}).setdefault(key_value.key, []).append(key_value)
        stats.shuffle_bytes = shuffle_bytes
        stats.spilled_bytes = shuffle_bytes  # written once on the map side
        sort_by_secondary = (job.requires_secondary_keys
                             and self.cluster.profile.supports_secondary_keys)
        if sort_by_secondary:
            for groups in partitions.values():
                for key_values in groups.values():
                    key_values.sort(key=lambda kv: (kv.secondary is None, kv.secondary))
        return partitions

    def _run_reduce_phase(self, job: JobSpec,
                          partitions: dict[int, dict[Any, list[KeyValue]]],
                          stats: JobStats, counters: Counters) -> list[Any]:
        context = TaskContext(counters, job.side_data,
                              self.cluster.num_machines, job.name)
        reducer = job.reducer
        assert reducer is not None
        reducer.setup(context)
        overhead = self.cost_parameters.record_overhead_bytes
        machines = self.cluster.num_machines
        output_records: list[Any] = []
        for partition in sorted(partitions):
            machine = partition % machines
            for key, key_values in partitions[partition].items():
                values = [kv.value for kv in key_values]
                bytes_in = sum(estimate_record_bytes(kv) for kv in key_values)
                stats.reduce_groups += 1
                stats.max_group_records = max(stats.max_group_records, len(values))
                stats.max_group_bytes = max(stats.max_group_bytes, bytes_in)
                if reducer.materializes_input:
                    # Side data is loaded by the mappers of the jobs in this
                    # library, so the reducer budget covers only the
                    # materialised value list.
                    stats.peak_task_memory = max(stats.peak_task_memory, bytes_in)
                    self._check_memory(job.name,
                                       f"reduce value list of key {key!r}",
                                       bytes_in, stats)
                bytes_out = 0
                records_out = 0
                for record in reducer.reduce(key, values, context):
                    output_records.append(record)
                    bytes_out += estimate_record_bytes(record)
                    records_out += 1
                work = bytes_in + bytes_out + overhead * len(values)
                stats.reduce.records_in += len(values)
                stats.reduce.records_out += records_out
                stats.reduce.bytes_in += bytes_in
                stats.reduce.bytes_out += bytes_out
                stats.reduce.add_machine_work(machine, work)
        cleanup_bytes = 0
        cleanup_count = 0
        for record in reducer.cleanup(context):
            output_records.append(record)
            cleanup_bytes += estimate_record_bytes(record)
            cleanup_count += 1
        if cleanup_count:
            stats.reduce.records_out += cleanup_count
            stats.reduce.bytes_out += cleanup_bytes
            stats.reduce.add_machine_work(0, cleanup_bytes + overhead * cleanup_count)
        return output_records

    # -- budget and profile checks --------------------------------------------

    def _check_profile(self, job: JobSpec) -> None:
        if job.requires_secondary_keys and not self.cluster.profile.supports_secondary_keys:
            raise UnsupportedFeatureError(
                f"job {job.name!r} requires secondary keys, which the "
                f"{self.cluster.profile.name!r} engine profile does not support")

    def _side_data_bytes(self, job: JobSpec) -> int:
        if job.side_data is None:
            return 0
        if job.side_data_bytes is not None:
            return int(job.side_data_bytes)
        return estimate_record_bytes(job.side_data)

    def _check_memory(self, job_name: str, what: str, required: int,
                      stats: JobStats) -> None:
        if not self.enforce_budgets:
            return
        budget = self.cluster.memory_per_machine
        if required > budget:
            raise MemoryBudgetExceeded(
                f"job {job_name!r}: {what} needs {required} bytes but each "
                f"machine only has {budget} bytes of memory",
                required_bytes=required, budget_bytes=budget)

    def _check_disk(self, job_name: str, stats: JobStats) -> None:
        if not self.enforce_budgets:
            return
        per_machine = (2 * stats.shuffle_bytes) // max(1, self.cluster.num_machines)
        budget = self.cluster.disk_per_machine
        if per_machine > budget:
            raise DiskBudgetExceeded(
                f"job {job_name!r}: intermediate data needs about {per_machine} "
                f"bytes of disk per machine but the budget is {budget} bytes",
                required_bytes=per_machine, budget_bytes=budget)

    def _check_scheduler(self, job_name: str, stats: JobStats) -> None:
        limit = self.cluster.scheduler_limit_seconds
        if stats.simulated_seconds > limit:
            raise JobTimeoutError(
                f"job {job_name!r} would run for {stats.simulated_seconds:.0f} "
                f"simulated seconds, exceeding the scheduler limit of "
                f"{limit:.0f} seconds; the scheduler killed it",
                simulated_seconds=stats.simulated_seconds, limit_seconds=limit)
