"""Job specifications and the Mapper / Combiner / Reducer programming model.

The programming model mirrors the paper's section 2:

* a **mapper** transforms one input record into zero or more
  ``<key, value>`` pairs (optionally with a *secondary key* that controls
  the within-group sort order when the engine profile supports it);
* a **dedicated combiner** pre-aggregates the values of a key on the mapper
  machine before the shuffle (the paper explicitly chooses dedicated
  combiners over on-mapper combining for scalability);
* a **reducer** receives one key together with the full
  ``reduce_value_list`` of that key and produces output records.

Reducers that must hold their entire value list in memory (for example the
VCL kernel reducer or the unsharded branch of Sharding2) declare
``materializes_input = True`` so that the runner can enforce the per-machine
memory budget, reproducing the thrashing failures discussed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Sequence

from repro.core.exceptions import JobConfigurationError
from repro.mapreduce.counters import Counters
from repro.mapreduce.partitioner import Partitioner, hash_partitioner
from repro.mapreduce.types import KeyValue


class TaskContext:
    """Per-task execution context handed to mappers, combiners and reducers.

    Provides access to the job's counters and to the side data loaded at the
    start of the task (the paper's "loading external data ... only at the
    beginning of each stage").
    """

    def __init__(self, counters: Counters, side_data: Any = None,
                 num_machines: int = 1, job_name: str = "") -> None:
        self.counters = counters
        self.side_data = side_data
        self.num_machines = num_machines
        self.job_name = job_name

    def increment(self, name: str, amount: int = 1) -> None:
        """Increment a named job counter."""
        self.counters.increment(name, amount)


class Mapper:
    """Base mapper: override :meth:`map`.

    :meth:`map` must be pure and deterministic (a MapReduce requirement for
    fault tolerance) and yields ``(key, value)`` or
    ``(key, value, secondary_key)`` tuples, or :class:`KeyValue` records.

    :meth:`setup` and :meth:`cleanup` run once per *task*, exactly as in
    real MapReduce.  The serial backend runs the whole input as one task;
    parallel backends split it into one task per worker, so a mapper that
    accumulates state across records (emitting from ``cleanup``, counting
    in ``setup``) sees per-task slices there — only mappers whose hooks are
    stateless (every mapper in this library) produce backend-invariant
    output.
    """

    def setup(self, context: TaskContext) -> None:
        """Called once per task before any record is mapped."""

    def map(self, record: Any, context: TaskContext) -> Iterator[Any]:
        """Transform one input record into zero or more key/value pairs."""
        raise NotImplementedError

    def cleanup(self, context: TaskContext) -> Iterator[Any]:
        """Called once per task after the last record; may emit pairs."""
        return iter(())


class IdentityMapper(Mapper):
    """Pass ``KeyValue`` records (or ``(key, value)`` tuples) through unchanged.

    The paper's Similarity2 step "employs an identity map stage"; this class
    is that stage.
    """

    def map(self, record: Any, context: TaskContext) -> Iterator[Any]:
        yield record


class Combiner:
    """Base dedicated combiner: override :meth:`combine`.

    The combiner is invoked on the mapper machine once per
    ``(key, secondary key)`` group of that mapper's output and yields
    replacement *values*; the key and secondary key are reattached by the
    runner, so a combiner can never redirect records to a different key
    (exactly the constraint real MapReduce imposes).
    """

    def combine(self, key: Hashable, values: Sequence[Any],
                context: TaskContext) -> Iterator[Any]:
        """Pre-aggregate the values of one key on the mapper machine."""
        raise NotImplementedError


class Reducer:
    """Base reducer: override :meth:`reduce`.

    ``values`` is the ``reduce_value_list`` of the key, sorted by secondary
    key when the engine profile supports secondary keys and the job asked
    for them.  Output records are arbitrary Python objects; they become the
    records of the job's output dataset.

    As for :class:`Mapper`, :meth:`setup` and :meth:`cleanup` run once per
    task — one task on the serial backend, one per worker batch of reduce
    partitions on the parallel backends — so backend-invariant output
    requires hooks that carry no cross-group state.
    """

    #: Set to True when the reducer must hold the whole reduce value list in
    #: memory at once (enables the runner's memory-budget check).
    materializes_input: bool = False

    def setup(self, context: TaskContext) -> None:
        """Called once per task before any group is reduced."""

    def reduce(self, key: Hashable, values: Sequence[Any],
               context: TaskContext) -> Iterator[Any]:
        """Reduce one key group into zero or more output records."""
        raise NotImplementedError

    def cleanup(self, context: TaskContext) -> Iterator[Any]:
        """Called once per task after the last group; may emit records."""
        return iter(())


class SummingCombiner(Combiner):
    """A combiner that sums numeric values (or tuples, element-wise)."""

    def combine(self, key: Hashable, values: Sequence[Any],
                context: TaskContext) -> Iterator[Any]:
        iterator = iter(values)
        try:
            accumulator = next(iterator)
        except StopIteration:
            return
        for value in iterator:
            if isinstance(accumulator, tuple):
                accumulator = tuple(a + b for a, b in zip(accumulator, value, strict=True))
            else:
                accumulator = accumulator + value
        yield accumulator


@dataclass
class JobSpec:
    """A single MapReduce job: mapper, optional combiner, optional reducer.

    Parameters
    ----------
    name:
        Job name, used in statistics and error messages.
    mapper / combiner / reducer:
        The user functions.  A ``None`` reducer makes the job map-only; its
        output dataset then contains the mapper's ``KeyValue`` records.
    partitioner:
        Assignment of reduce keys to reducers (default: stable hash).
    side_data:
        Arbitrary object loaded by every task at setup time (for example the
        lookup table of the Lookup algorithm).  Its estimated size counts
        against every machine's memory budget and its load time is a fixed,
        machine-count-independent component of the simulated run time.
    requires_secondary_keys:
        Declare that the job relies on the within-group sort order.  Running
        such a job on a Hadoop-profile cluster raises
        :class:`~repro.core.exceptions.UnsupportedFeatureError`.
    num_reducers:
        Number of reduce partitions; defaults to the cluster's machine count.
    """

    name: str
    mapper: Mapper
    reducer: Reducer | None = None
    combiner: Combiner | None = None
    partitioner: Partitioner = field(default=hash_partitioner)
    side_data: Any = None
    side_data_bytes: int | None = None
    requires_secondary_keys: bool = False
    num_reducers: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise JobConfigurationError("a job must have a non-empty name")
        if not isinstance(self.mapper, Mapper):
            raise JobConfigurationError(
                f"job {self.name!r}: mapper must be a Mapper instance, "
                f"got {type(self.mapper).__name__}")
        if self.reducer is not None and not isinstance(self.reducer, Reducer):
            raise JobConfigurationError(
                f"job {self.name!r}: reducer must be a Reducer instance or None")
        if self.combiner is not None and not isinstance(self.combiner, Combiner):
            raise JobConfigurationError(
                f"job {self.name!r}: combiner must be a Combiner instance or None")
        if self.num_reducers is not None and self.num_reducers <= 0:
            raise JobConfigurationError(
                f"job {self.name!r}: num_reducers must be positive")


def normalise_emit(emitted: Any) -> KeyValue:
    """Normalise a mapper/combiner emission into a :class:`KeyValue`.

    Accepts ``KeyValue`` instances, ``(key, value)`` pairs and
    ``(key, value, secondary)`` triples.
    """
    if isinstance(emitted, KeyValue):
        return emitted
    if isinstance(emitted, tuple) and len(emitted) == 2:
        return KeyValue(emitted[0], emitted[1])
    if isinstance(emitted, tuple) and len(emitted) == 3:
        return KeyValue(emitted[0], emitted[1], emitted[2])
    raise JobConfigurationError(
        "mappers must emit KeyValue records, (key, value) pairs or "
        f"(key, value, secondary) triples; got {type(emitted).__name__}")


def iterate_emissions(emissions: Iterable[Any] | None) -> Iterator[KeyValue]:
    """Yield normalised emissions, treating ``None`` as empty."""
    if emissions is None:
        return
    for emitted in emissions:
        yield normalise_emit(emitted)
