"""Record, statistics and size-estimation types for the MapReduce simulator.

The simulator does not measure wall-clock time.  Instead every job execution
produces a :class:`JobStats` describing how many records and bytes flowed
through each phase and how the work distributed across the simulated
machines; the cost model (:mod:`repro.mapreduce.costmodel`) converts those
loads into a deterministic simulated run time.  This mirrors how the paper
reasons about its algorithms: the bottleneck is always "the slowest machine"
(the reducer with the longest ``reduce_value_list``, the mapper holding the
largest multiset), not the aggregate work.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Hashable

#: Rough per-object overhead charged by the size estimator, in bytes.
_OBJECT_OVERHEAD = 16


def estimate_record_bytes(value: Any) -> int:
    """Estimate the serialised size of a record, in bytes.

    The estimate is intentionally coarse (it models a compact binary
    serialisation, not Python object overhead) but it is *consistent*, which
    is all the cost model needs: relative sizes drive the shuffle volume,
    the memory-budget checks and the per-machine load balance.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    size_hint = getattr(value, "estimated_bytes", None)
    if callable(size_hint):
        return int(size_hint())
    if isinstance(value, float):
        return 8
    if isinstance(value, (str, bytes)):
        return len(value) + 4
    if isinstance(value, (tuple, list, set, frozenset)):
        return _OBJECT_OVERHEAD + sum(estimate_record_bytes(item) for item in value)
    if isinstance(value, dict):
        return _OBJECT_OVERHEAD + sum(
            estimate_record_bytes(key) + estimate_record_bytes(item)
            for key, item in value.items())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _OBJECT_OVERHEAD + sum(
            estimate_record_bytes(getattr(value, fld.name))
            for fld in dataclasses.fields(value))
    if hasattr(value, "items"):
        return _OBJECT_OVERHEAD + sum(
            estimate_record_bytes(key) + estimate_record_bytes(item)
            for key, item in value.items())
    return _OBJECT_OVERHEAD


@dataclass(frozen=True, slots=True)
class KeyValue:
    """An intermediate ``<key, value>`` record with an optional secondary key.

    Secondary keys implement the within-group sort order that the Google
    MapReduce supports and Hadoop does not (paper section 2); the shuffle
    stage sorts each reduce value list by the secondary key when the cluster
    profile allows it.  One ``KeyValue`` is allocated per emission, so the
    class is slotted: the saved ``__dict__`` per record is the single
    biggest memory lever in a large shuffle.
    """

    key: Hashable
    value: Any
    secondary: Hashable = None


@dataclass
class PhaseStats:
    """Load statistics for one phase (map, combine or reduce) of a job."""

    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Total per-record processing units attributed to the phase.
    work_units: float = 0.0
    #: The largest amount of work any single indivisible unit required
    #: (a single map record, or a single reduce group).  The cost model uses
    #: it as a lower bound on the phase's critical path.
    max_unit_work: float = 0.0
    #: Per-machine work assignment (index -> work units).
    machine_work: dict[int, float] = field(default_factory=dict)

    def add_machine_work(self, machine: int, work: float) -> None:
        """Attribute ``work`` units to ``machine``."""
        self.machine_work[machine] = self.machine_work.get(machine, 0.0) + work
        self.work_units += work
        if work > self.max_unit_work:
            self.max_unit_work = work

    @property
    def max_machine_work(self) -> float:
        """The load of the most loaded machine in this phase."""
        if not self.machine_work:
            return 0.0
        return max(self.machine_work.values())

    @property
    def skew(self) -> float:
        """Ratio of the most loaded machine to the average machine load."""
        if not self.machine_work:
            return 0.0
        average = self.work_units / len(self.machine_work)
        if average == 0.0:
            return 0.0
        return self.max_machine_work / average

    def merge(self, other: "PhaseStats") -> None:
        """Fold another phase partial into this one (sums and maxes).

        All fields are integer-valued sums or maxima of per-record work, so
        merging per-task partials reproduces the statistics of a single
        serial pass exactly, regardless of how records were split into tasks.
        """
        self.records_in += other.records_in
        self.records_out += other.records_out
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        self.work_units += other.work_units
        self.max_unit_work = max(self.max_unit_work, other.max_unit_work)
        for machine, work in other.machine_work.items():
            self.machine_work[machine] = self.machine_work.get(machine, 0.0) + work


@dataclass
class JobStats:
    """Complete load statistics for one simulated MapReduce job."""

    job_name: str = ""
    map: PhaseStats = field(default_factory=PhaseStats)
    combine: PhaseStats = field(default_factory=PhaseStats)
    reduce: PhaseStats = field(default_factory=PhaseStats)
    #: Bytes moved across the simulated network during the shuffle
    #: (the map-output bytes after combining).
    shuffle_bytes: int = 0
    #: Number of distinct reduce keys.
    reduce_groups: int = 0
    #: Size, in records, of the longest reduce value list.
    max_group_records: int = 0
    #: Size, in bytes, of the longest reduce value list.
    max_group_bytes: int = 0
    #: Bytes of side data (for example a lookup table) loaded by every task.
    side_data_bytes: int = 0
    #: Number of machines the job ran on.
    num_machines: int = 0
    #: Peak memory required by any single task, in bytes.
    peak_task_memory: int = 0
    #: Total intermediate bytes written to local disks.
    spilled_bytes: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    #: Simulated run time in seconds, filled in by the cost model.
    simulated_seconds: float = 0.0

    def merge_counters(self, counters: dict[str, int]) -> None:
        """Accumulate counter values into this job's counter map."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value


@dataclass
class PipelineStats:
    """Aggregated statistics over a multi-job pipeline."""

    name: str = ""
    jobs: list[JobStats] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated run time of all jobs in the pipeline."""
        return sum(job.simulated_seconds for job in self.jobs)

    @property
    def shuffle_bytes(self) -> int:
        """Total bytes shuffled across all jobs."""
        return sum(job.shuffle_bytes for job in self.jobs)

    @property
    def total_map_records(self) -> int:
        """Total records consumed by all map phases."""
        return sum(job.map.records_in for job in self.jobs)

    def job(self, name: str) -> JobStats:
        """Return the stats of the job called ``name``."""
        for stats in self.jobs:
            if stats.job_name == name:
                return stats
        available = ", ".join(repr(stats.job_name) for stats in self.jobs)
        raise KeyError(f"no job named {name!r} in pipeline {self.name!r}; "
                       f"available jobs: {available or '(none)'}")

    def counters(self) -> dict[str, int]:
        """Return all counters summed across jobs."""
        merged: dict[str, int] = {}
        for job in self.jobs:
            for key, value in job.counters.items():
                merged[key] = merged.get(key, 0) + value
        return merged
