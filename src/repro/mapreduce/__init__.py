"""A small, deterministic MapReduce simulator.

This package is the substrate the paper's algorithms run on.  It executes
mappers, dedicated combiners and reducers exactly (results are real), while
per-machine loads, memory/disk budgets and a calibrated cost model provide a
deterministic *simulated* run time used by the figure benchmarks.
"""

from repro.mapreduce.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
)
from repro.mapreduce.cluster import (
    GIGABYTE,
    GOOGLE_MAPREDUCE,
    HADOOP,
    MEGABYTE,
    Cluster,
    ClusterProfile,
    laptop_cluster,
    paper_cluster,
)
from repro.mapreduce.costmodel import (
    DEFAULT_COST_PARAMETERS,
    CostBreakdown,
    CostModel,
    CostParameters,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.job import (
    Combiner,
    IdentityMapper,
    JobSpec,
    Mapper,
    Reducer,
    SummingCombiner,
    TaskContext,
)
from repro.mapreduce.partitioner import (
    first_component_partitioner,
    hash_partitioner,
    stable_hash,
)
from repro.mapreduce.runner import JobResult, LocalJobRunner, PipelineResult
from repro.mapreduce.types import (
    JobStats,
    KeyValue,
    PhaseStats,
    PipelineStats,
    estimate_record_bytes,
)

__all__ = [
    "Cluster",
    "ClusterProfile",
    "Combiner",
    "CostBreakdown",
    "CostModel",
    "CostParameters",
    "Counters",
    "DEFAULT_COST_PARAMETERS",
    "Dataset",
    "ExecutionBackend",
    "GIGABYTE",
    "GOOGLE_MAPREDUCE",
    "HADOOP",
    "IdentityMapper",
    "JobResult",
    "JobSpec",
    "JobStats",
    "KeyValue",
    "LocalJobRunner",
    "MEGABYTE",
    "Mapper",
    "PhaseStats",
    "PipelineResult",
    "PipelineStats",
    "ProcessBackend",
    "Reducer",
    "SerialBackend",
    "SummingCombiner",
    "TaskContext",
    "ThreadBackend",
    "available_backends",
    "estimate_record_bytes",
    "get_backend",
    "first_component_partitioner",
    "hash_partitioner",
    "laptop_cluster",
    "paper_cluster",
    "stable_hash",
]
