"""Simulated cluster description.

The paper's experiments run every algorithm on the same fleet of machines,
"allowed 1GB of memory, and 10GB of disk space on each of the machines",
varying the fleet size between 100 and 900 machines.  :class:`Cluster`
captures exactly those knobs plus the engine *profile*: the Google
MapReduce supports secondary keys (within-group sort order), while the
public Hadoop does not — a distinction the paper leans on when motivating
the Lookup and Sharding algorithms as Hadoop-compatible alternatives to
Online-Aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.exceptions import JobConfigurationError

#: One binary gigabyte, the per-machine memory budget used in the paper.
GIGABYTE = 1024 ** 3
#: One binary megabyte, handy for scaled-down laptop experiments.
MEGABYTE = 1024 ** 2


@dataclass(frozen=True)
class ClusterProfile:
    """Engine capabilities of the MapReduce implementation being simulated."""

    name: str
    #: Whether the shuffle can sort each reduce value list by a secondary
    #: key.  True for the Google MapReduce, False for stock Hadoop.
    supports_secondary_keys: bool
    #: Whether reducers may rewind (re-iterate) their reduce value list.
    #: Needed by the chunked Similarity1 reducer described in section 4.
    supports_reducer_rewind: bool = True


#: The internal Google MapReduce profile assumed by Online-Aggregation.
GOOGLE_MAPREDUCE = ClusterProfile("google-mapreduce", supports_secondary_keys=True)

#: The public Hadoop profile: no secondary keys (paper section 2).
HADOOP = ClusterProfile("hadoop", supports_secondary_keys=False)


@dataclass(frozen=True)
class Cluster:
    """A shared-nothing cluster of identical commodity machines.

    Parameters mirror the experimental setup of section 7: a machine count,
    a per-machine memory budget, a per-machine disk budget and a scheduler
    limit after which long-running jobs are killed (the paper reports VCL's
    kernel mappers being killed after 48 hours).
    """

    num_machines: int = 100
    memory_per_machine: int = GIGABYTE
    disk_per_machine: int = 10 * GIGABYTE
    profile: ClusterProfile = GOOGLE_MAPREDUCE
    scheduler_limit_seconds: float = float("inf")

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise JobConfigurationError(
                f"a cluster needs at least one machine, got {self.num_machines}")
        if self.memory_per_machine <= 0:
            raise JobConfigurationError("memory_per_machine must be positive")
        if self.disk_per_machine <= 0:
            raise JobConfigurationError("disk_per_machine must be positive")
        if self.scheduler_limit_seconds <= 0:
            raise JobConfigurationError("scheduler_limit_seconds must be positive")

    def with_machines(self, num_machines: int) -> "Cluster":
        """Return a copy of this cluster with a different machine count."""
        return replace(self, num_machines=num_machines)

    def with_profile(self, profile: ClusterProfile) -> "Cluster":
        """Return a copy of this cluster running a different engine profile."""
        return replace(self, profile=profile)

    def with_memory(self, memory_per_machine: int) -> "Cluster":
        """Return a copy of this cluster with a different memory budget."""
        return replace(self, memory_per_machine=memory_per_machine)

    def with_scheduler_limit(self, limit_seconds: float) -> "Cluster":
        """Return a copy with a scheduler kill limit (in simulated seconds)."""
        return replace(self, scheduler_limit_seconds=limit_seconds)

    @property
    def total_memory(self) -> int:
        """Aggregate memory of the whole fleet."""
        return self.num_machines * self.memory_per_machine

    @property
    def total_disk(self) -> int:
        """Aggregate disk of the whole fleet."""
        return self.num_machines * self.disk_per_machine


def paper_cluster(num_machines: int = 500,
                  profile: ClusterProfile = GOOGLE_MAPREDUCE) -> Cluster:
    """The cluster configuration used throughout the paper's evaluation."""
    return Cluster(num_machines=num_machines,
                   memory_per_machine=GIGABYTE,
                   disk_per_machine=10 * GIGABYTE,
                   profile=profile,
                   scheduler_limit_seconds=48 * 3600.0)


def laptop_cluster(num_machines: int = 8,
                   memory_per_machine: int = 64 * MEGABYTE,
                   profile: ClusterProfile = GOOGLE_MAPREDUCE) -> Cluster:
    """A scaled-down cluster for unit tests and quickstart examples."""
    return Cluster(num_machines=num_machines,
                   memory_per_machine=memory_per_machine,
                   disk_per_machine=64 * memory_per_machine,
                   profile=profile)
