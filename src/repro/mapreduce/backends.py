"""Pluggable execution backends for the MapReduce runner.

The runner turns every phase of a job into a list of self-contained tasks
(see :mod:`repro.mapreduce.phases`); a backend decides *where* those tasks
run:

* :class:`SerialBackend` executes tasks inline, one after another, exactly
  reproducing the original single-process runner (it is the default);
* :class:`ThreadBackend` fans tasks out to a thread pool — with CPython's
  GIL this only pays off for workloads that release the GIL, but it
  exercises the full parallel code path with zero pickling cost;
* :class:`ProcessBackend` fans tasks out to a multiprocessing pool, running
  mapper/combiner slices and reducer partition batches on real OS processes
  so CPU-bound pipelines scale with the machine's cores.

Results and statistics are identical across backends for the library's
(stateless) mappers and reducers: tasks return exact integer-valued partial
statistics that the runner merges deterministically, and task outputs are
concatenated in task order.  Backends only change wall-clock time, never
results, counters or simulated times.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.core.exceptions import JobConfigurationError


def default_worker_count() -> int:
    """The number of workers used when none is requested: usable CPUs."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without CPU affinity (macOS, Windows)
        return os.cpu_count() or 1


class ExecutionBackend:
    """Where phase tasks run.  Subclasses implement :meth:`run_tasks`.

    Backends are reusable across jobs and pipelines; pooled backends create
    their workers lazily on first use and release them in :meth:`close` (or
    on exit when used as a context manager).
    """

    #: Registry name of the backend (``"serial"``, ``"thread"``, ...).
    name: str = "base"

    def __init__(self, num_workers: int | None = None) -> None:
        self.num_workers = max(1, int(num_workers or default_worker_count()))

    def run_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> list[Any]:
        """Apply ``function`` to every task, returning results in task order."""
        raise NotImplementedError

    def execute_phases(self, runner: Any, job: Any, dataset: Any,
                       stats: Any, counters: Any,
                       num_reducers: int) -> list[Any] | None:
        """Optionally take over a whole job's map/combine/shuffle/reduce.

        The runner calls this once per job before its generic phase loop.
        Returning ``None`` (the default) keeps the generic path: the runner
        splits each phase into tasks and feeds them through
        :meth:`run_tasks`.  A backend that owns its own execution strategy —
        an out-of-core shuffle, a SQL pushdown — returns the job's output
        records instead, having filled in ``stats`` and ``counters``
        exactly as the generic path would (an empty list is a valid
        output, so callers must test ``is None``).
        """
        return None

    def close(self) -> None:
        """Release any pooled workers; the backend may be used again after."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_workers={self.num_workers})"


class SerialBackend(ExecutionBackend):
    """Run every task inline on the calling thread (the default backend).

    With one worker the runner builds exactly one task per phase, so this
    backend is bit-identical to the original serial runner, including the
    once-per-phase mapper/reducer setup and cleanup hooks.
    """

    name = "serial"

    def __init__(self, num_workers: int | None = None) -> None:
        # A serial backend always has exactly one worker; the parameter is
        # accepted so all backends share a constructor signature.
        super().__init__(1)

    def run_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> list[Any]:
        return [function(task) for task in tasks]


class ThreadBackend(ExecutionBackend):
    """Run tasks on a lazily created thread pool.

    Mapper/combiner/reducer instances are shared across threads, which is
    safe for the library's jobs: their only mutable state is assigned
    idempotently in ``setup`` (re-loading the same side data).
    """

    name = "thread"

    def __init__(self, num_workers: int | None = None) -> None:
        super().__init__(num_workers)
        self._executor: ThreadPoolExecutor | None = None

    def run_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> list[Any]:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-mapreduce")
        return list(self._executor.map(function, tasks))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ProcessBackend(ExecutionBackend):
    """Run tasks on a lazily created multiprocessing pool.

    Tasks and their results cross process boundaries by pickling, so jobs
    must be picklable (every job in this library is: mappers and reducers
    are plain classes, side data is plain dictionaries).  The pool prefers
    the ``fork`` start method when available — workers inherit the parent's
    state instantly — and falls back to the platform default otherwise.
    """

    name = "process"

    def __init__(self, num_workers: int | None = None) -> None:
        super().__init__(num_workers)
        self._pool: Any = None

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            import multiprocessing
            import sys

            # Prefer fork only on Linux, where it is the safe default and
            # workers inherit the parent instantly; macOS deliberately moved
            # to spawn (fork is unsafe under ObjC-backed libraries), so use
            # the platform default everywhere else.
            if sys.platform == "linux":
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._pool = context.Pool(processes=self.num_workers)
        return self._pool

    def run_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        return self._ensure_pool().map(function, tasks, chunksize=1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


_BACKEND_FACTORIES: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}

#: Backends registered lazily: name -> module whose import registers it.
#: Keeps ``repro.mapreduce`` free of a hard dependency on ``repro.exec``
#: (which itself imports storage and similarity machinery).
_LAZY_BACKENDS: dict[str, str] = {
    "disk": "repro.exec",
    "sql": "repro.exec",
}


def register_backend(factory: type[ExecutionBackend]) -> None:
    """Register an :class:`ExecutionBackend` subclass under its ``name``."""
    _BACKEND_FACTORIES[factory.name] = factory


def _resolve_lazy(name: str) -> None:
    module = _LAZY_BACKENDS.get(name)
    if module is not None and name not in _BACKEND_FACTORIES:
        import importlib

        importlib.import_module(module)


def available_backends() -> list[str]:
    """Return the sorted names of all execution backends."""
    for name in _LAZY_BACKENDS:
        _resolve_lazy(name)
    return sorted(_BACKEND_FACTORIES)


def get_backend(backend: str | ExecutionBackend | None = "serial",
                num_workers: int | None = None,
                **options: Any) -> ExecutionBackend:
    """Resolve a backend name into an :class:`ExecutionBackend` instance.

    Backend instances pass through unchanged (``num_workers`` and
    ``options`` are then ignored); ``None`` resolves to the serial backend.
    Keyword ``options`` are forwarded to the backend constructor — for
    example ``get_backend("disk", memory_budget_bytes=1 << 20)`` or
    ``get_backend("sql", engine="duckdb")``.  Unknown names raise
    :class:`~repro.core.exceptions.JobConfigurationError` listing the
    available backends.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        return SerialBackend()
    name = str(backend).strip().lower()
    _resolve_lazy(name)
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        known = ", ".join(available_backends())
        raise JobConfigurationError(
            f"unknown execution backend {backend!r}; "
            f"available backends: {known}")
    return factory(num_workers, **options)
