"""Partitioners: assignment of reduce keys to reducers / machines.

The default is a stable hash partitioner.  Python's built-in ``hash`` is
randomised per process for strings, so a content-based hash is used instead;
this keeps the simulated per-machine loads (and therefore the simulated run
times) identical across runs, which the benchmarks rely on.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Hashable

Partitioner = Callable[[Hashable, int], int]


def stable_hash(value: Hashable, salt: str = "") -> int:
    """A deterministic, process-independent 64-bit hash of ``value``.

    The value is rendered through ``repr``; record keys in this library are
    tuples of strings, integers and floats, for which ``repr`` is stable.
    """
    digest = hashlib.blake2b(f"{salt}|{value!r}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash_partitioner(key: Hashable, num_partitions: int) -> int:
    """The default partitioner: stable hash of the whole key."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return stable_hash(key) % num_partitions


def first_component_partitioner(key: Hashable, num_partitions: int) -> int:
    """Partition composite keys by their first component only.

    This is the "rewrite the partitioner" workaround for secondary keys
    mentioned in the paper (footnote 1): records keyed by ``(k, secondary)``
    are routed by ``k`` alone so that one reducer sees every secondary key of
    ``k``.  Provided for completeness and for the ablation tests; the
    V-SMART-Join algorithms proposed in the paper deliberately avoid needing
    it.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    component = key[0] if isinstance(key, tuple) and key else key
    return stable_hash(component) % num_partitions


def round_robin_assigner(index: int, num_partitions: int) -> int:
    """Assign the ``index``-th unit of work to a machine round-robin."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return index % num_partitions
