"""A tiny in-memory stand-in for the distributed file system.

Job inputs and outputs are :class:`Dataset` objects: named, immutable
sequences of records.  Real MapReduce reads partitioned files from GFS/HDFS;
the simulator only needs the record stream and its approximate byte size, so
a dataset is simply a tuple of records plus lazily computed statistics.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.mapreduce.types import estimate_record_bytes


class Dataset:
    """An immutable, named sequence of records.

    Datasets are cheap wrappers; records are whatever Python objects the
    jobs produce (``InputTuple``, ``KeyValue``, plain tuples, ...).
    """

    __slots__ = ("_name", "_records", "_total_bytes")

    def __init__(self, name: str, records: Iterable[Any]) -> None:
        self._name = name
        self._records: tuple = tuple(records)
        self._total_bytes: int | None = None

    @classmethod
    def from_records(cls, records: Iterable[Any], name: str = "dataset") -> "Dataset":
        """Build a dataset from any iterable of records."""
        return cls(name, records)

    @property
    def name(self) -> str:
        """The dataset's human-readable name (used in stats and logs)."""
        return self._name

    @property
    def records(self) -> Sequence[Any]:
        """The records as an immutable sequence."""
        return self._records

    @property
    def total_bytes(self) -> int:
        """Estimated serialised size of the whole dataset."""
        if self._total_bytes is None:
            self._total_bytes = sum(estimate_record_bytes(record)
                                    for record in self._records)
        return self._total_bytes

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Any:
        return self._records[index]

    def __repr__(self) -> str:
        return f"Dataset(name={self._name!r}, records={len(self._records)})"

    def map_records(self, transform: Callable[[Any], Any],
                    name: str | None = None) -> "Dataset":
        """Return a new dataset with ``transform`` applied to every record."""
        return Dataset(name or f"{self._name}:mapped",
                       (transform(record) for record in self._records))

    def filter_records(self, predicate: Callable[[Any], bool],
                       name: str | None = None) -> "Dataset":
        """Return a new dataset keeping only records matching ``predicate``."""
        return Dataset(name or f"{self._name}:filtered",
                       (record for record in self._records if predicate(record)))

    def concat(self, other: "Dataset", name: str | None = None) -> "Dataset":
        """Return the concatenation of this dataset and ``other``."""
        return Dataset(name or f"{self._name}+{other._name}",
                       list(self._records) + list(other._records))
