"""User-visible counters, mirroring Hadoop/MapReduce job counters.

Mappers and reducers increment named counters through their
:class:`TaskContext`; the runner folds them into the job's
:class:`~repro.mapreduce.types.JobStats`.  The V-SMART-Join jobs use
counters to report, for example, the number of candidate pairs generated and
the number of stop words discarded, which the benchmarks surface alongside
the simulated run times.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator


class Counters:
    """A named-counter accumulator with dictionary-style access."""

    def __init__(self) -> None:
        self._values: Counter[str] = Counter()

    def increment(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (which may be negative)."""
        self._values[name] += int(amount)

    def value(self, name: str) -> int:
        """Return the current value of ``name`` (zero when never set)."""
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one."""
        self._values.update(other._values)

    def merge_dict(self, values: dict[str, int]) -> None:
        """Fold a plain counter snapshot (e.g. from a worker task) into this one."""
        self._values.update(values)

    def as_dict(self) -> dict[str, int]:
        """Return a plain dictionary snapshot of all counters."""
        return dict(self._values)

    def __getitem__(self, name: str) -> int:
        return self.value(name)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"Counters({dict(self._values)!r})"
