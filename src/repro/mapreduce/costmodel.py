"""Deterministic cost model converting job statistics into simulated time.

The simulator runs every mapper and reducer in-process, so wall-clock time on
the development machine says nothing about how the algorithm would behave on
a 500-machine fleet.  Instead, the cost model reproduces the reasoning the
paper itself uses:

* a phase finishes when its *slowest machine* finishes, so per-phase time is
  the maximum per-machine work (never less than the largest indivisible unit
  of work — a single map record or a single reduce group);
* the shuffle is bounded both by the aggregate network bandwidth of the
  fleet and by the single link of the reducer receiving the largest group;
* loading side data (lookup tables, the VCL frequency-sorted alphabet) is a
  fixed per-machine cost that does not shrink as machines are added — this
  is exactly why the paper observes Lookup benefiting least from scale-out;
* every MapReduce step pays a fixed start/stop overhead — the paper notes "a
  large portion of the run times were spent in starting and stopping the
  MapReduce runs".

All rates are expressed in bytes per second of *work units*; work units are
bytes processed plus a per-record overhead, as accumulated by the runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.cluster import Cluster
from repro.mapreduce.types import JobStats


@dataclass(frozen=True)
class CostParameters:
    """Calibration constants of the simulated-time model.

    The defaults are calibrated so that the scaled-down synthetic datasets
    reproduce the qualitative shape of the paper's figures (who wins, the
    rough factors, where scaling flattens) — absolute seconds are not
    meaningful.
    """

    #: Fixed start/stop overhead of one MapReduce step, in seconds.
    job_overhead_seconds: float = 30.0
    #: Per-machine processing throughput (CPU plus local I/O), bytes/second.
    machine_throughput: float = 8.0e6
    #: Per-machine network bandwidth during the shuffle, bytes/second.
    network_bandwidth: float = 4.0e6
    #: Per-machine rate at which side data is read into memory, bytes/second.
    side_data_load_rate: float = 16.0e6
    #: Work-unit overhead charged per record (models per-record CPU cost).
    record_overhead_bytes: float = 64.0
    #: Per-machine sequential disk bandwidth for spilled shuffle data,
    #: bytes/second.  ``None`` (the default) charges nothing for disk —
    #: the historical behaviour, appropriate while shuffles stay in memory.
    #: Set it when running out-of-core backends so ``algorithm="auto"`` and
    #: backend selection price the write+read of every spilled byte.
    disk_bandwidth: float | None = None

    def __post_init__(self) -> None:
        if min(self.machine_throughput, self.network_bandwidth,
               self.side_data_load_rate) <= 0:
            raise ValueError("all cost-model rates must be positive")
        if self.disk_bandwidth is not None and self.disk_bandwidth <= 0:
            raise ValueError("disk_bandwidth must be positive when set")
        if self.job_overhead_seconds < 0 or self.record_overhead_bytes < 0:
            raise ValueError("overheads must be non-negative")


#: Default calibration shared by the benchmarks.
DEFAULT_COST_PARAMETERS = CostParameters()


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated seconds attributed to each component of a job."""

    overhead_seconds: float
    side_data_seconds: float
    map_seconds: float
    shuffle_seconds: float
    reduce_seconds: float
    #: Spill I/O of an out-of-core shuffle; 0.0 unless the calibration sets
    #: :attr:`CostParameters.disk_bandwidth` (defaulted so existing
    #: construction sites and serialized breakdowns stay valid).
    disk_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total simulated run time of the job."""
        return (self.overhead_seconds + self.side_data_seconds
                + self.map_seconds + self.shuffle_seconds
                + self.reduce_seconds + self.disk_seconds)


class CostModel:
    """Convert :class:`JobStats` into simulated run time on a cluster."""

    def __init__(self, parameters: CostParameters = DEFAULT_COST_PARAMETERS) -> None:
        self.parameters = parameters

    def job_cost(self, stats: JobStats, cluster: Cluster) -> CostBreakdown:
        """Compute the per-component simulated cost of one job."""
        params = self.parameters
        machines = max(1, cluster.num_machines)

        side_data_seconds = stats.side_data_bytes / params.side_data_load_rate

        map_critical = max(stats.map.max_machine_work, stats.map.max_unit_work)
        map_seconds = map_critical / params.machine_throughput

        # Aggregate shuffle constrained by fleet bandwidth, plus the single
        # link of the reducer that must receive the largest group.
        aggregate_shuffle = stats.shuffle_bytes / (params.network_bandwidth * machines)
        slowest_receiver = stats.max_group_bytes / params.network_bandwidth
        shuffle_seconds = aggregate_shuffle + slowest_receiver

        reduce_critical = max(stats.reduce.max_machine_work,
                              stats.reduce.max_unit_work)
        reduce_seconds = reduce_critical / params.machine_throughput

        # Out-of-core shuffles write every spilled byte once and read it
        # back once; the fleet's disks absorb that in parallel.  The term
        # is charged from the same ``spilled_bytes`` statistic for every
        # backend, so enabling it never breaks cross-backend parity of
        # simulated times — it changes what all of them report, honestly.
        disk_seconds = 0.0
        if params.disk_bandwidth is not None:
            disk_seconds = (2 * stats.spilled_bytes
                            / (params.disk_bandwidth * machines))

        return CostBreakdown(
            overhead_seconds=params.job_overhead_seconds,
            side_data_seconds=side_data_seconds,
            map_seconds=map_seconds,
            shuffle_seconds=shuffle_seconds,
            reduce_seconds=reduce_seconds,
            disk_seconds=disk_seconds,
        )

    def annotate(self, stats: JobStats, cluster: Cluster) -> float:
        """Fill ``stats.simulated_seconds`` and return the value."""
        breakdown = self.job_cost(stats, cluster)
        stats.simulated_seconds = breakdown.total_seconds
        return stats.simulated_seconds
