"""Proxy (load-balancer) identification and its evaluation (paper section 7.4).

The paper judges each similarity threshold by the *coverage* of the
discovered similar IPs and by the *false positives* — IPs declared similar
that cannot belong to the same proxy.  With the synthetic workload the
planted proxy groups are known exactly, so both metrics are computed against
ground truth rather than by manual inspection:

* a discovered pair is a true positive when both IPs belong to the same
  planted group, a false positive otherwise;
* coverage is the fraction of planted same-group pairs that were discovered;
* the paper's mitigation — dropping IPs that observed fewer than 50 cookies
  — is implemented as a pre-filter and its effect on the false-positive rate
  is part of the §7.4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.communities.clustering import clusters_from_pairs
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair, canonical_pair


@dataclass(frozen=True)
class ProxyEvaluation:
    """Pair-level evaluation of discovered proxies against planted groups."""

    threshold: float
    discovered_pairs: int
    true_positive_pairs: int
    false_positive_pairs: int
    ground_truth_pairs: int
    discovered_clusters: int
    largest_cluster: int

    @property
    def precision(self) -> float:
        """Fraction of discovered pairs that are genuine same-proxy pairs."""
        if self.discovered_pairs == 0:
            return 1.0
        return self.true_positive_pairs / self.discovered_pairs

    @property
    def coverage(self) -> float:
        """Fraction of planted same-proxy pairs that were discovered (recall)."""
        if self.ground_truth_pairs == 0:
            return 1.0
        return self.true_positive_pairs / self.ground_truth_pairs

    @property
    def false_positive_rate(self) -> float:
        """Fraction of discovered pairs that are false positives."""
        if self.discovered_pairs == 0:
            return 0.0
        return self.false_positive_pairs / self.discovered_pairs


def filter_small_multisets(multisets: Iterable[Multiset],
                           minimum_distinct_elements: int = 50) -> list[Multiset]:
    """Drop IPs that observed fewer than the given number of distinct cookies.

    This is the section 7.4 mitigation that "almost eliminated the false
    positives for all the thresholds" by removing IPs that have very little
    chance of being proxies.
    """
    return [multiset for multiset in multisets
            if multiset.underlying_cardinality >= minimum_distinct_elements]


def ground_truth_pairs(proxy_groups: Sequence[set]) -> set[tuple]:
    """All unordered same-group IP pairs implied by the planted groups."""
    pairs: set[tuple] = set()
    for group in proxy_groups:
        for first, second in combinations(sorted(group, key=repr), 2):
            pairs.add(canonical_pair(first, second))
    return pairs


def evaluate_proxy_discovery(pairs: Iterable[SimilarPair],
                             proxy_groups: Sequence[set],
                             threshold: float,
                             restrict_to_ids: set | None = None) -> ProxyEvaluation:
    """Score discovered similar pairs against the planted proxy groups.

    ``restrict_to_ids`` limits the ground truth to IPs that survived a
    pre-filter (for example the <50-cookies filter), so coverage is not
    penalised for pairs that were filtered out on purpose.
    """
    truth = ground_truth_pairs(proxy_groups)
    if restrict_to_ids is not None:
        truth = {pair for pair in truth
                 if pair[0] in restrict_to_ids and pair[1] in restrict_to_ids}
    discovered = list(pairs)
    discovered_keys = {pair.pair for pair in discovered}
    true_positives = len(discovered_keys & truth)
    false_positives = len(discovered_keys) - true_positives
    clusters = clusters_from_pairs(discovered)
    return ProxyEvaluation(
        threshold=threshold,
        discovered_pairs=len(discovered_keys),
        true_positive_pairs=true_positives,
        false_positive_pairs=false_positives,
        ground_truth_pairs=len(truth),
        discovered_clusters=len(clusters),
        largest_cluster=max((len(cluster) for cluster in clusters), default=0),
    )


def discovered_proxy_groups(pairs: Iterable[SimilarPair],
                            minimum_size: int = 2) -> list[set]:
    """The discovered load-balancer groups (similarity-graph clusters)."""
    return clusters_from_pairs(pairs, minimum_size=minimum_size)
