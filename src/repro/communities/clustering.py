"""Clustering of the similarity graph into communities.

The paper treats each connected set of similar IPs as one load balancer.
Connected components are computed with a union-find structure; a stricter
mutual-similarity variant (every member similar to at least a fraction of
the cluster) is provided for noisier graphs.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.communities.graph import SimilarityGraph
from repro.core.records import SimilarPair


class UnionFind:
    """Disjoint-set forest with union by size and path compression."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._size: dict = {}

    def add(self, item: Hashable) -> None:
        """Register an item as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Return the representative of the item's set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: Hashable, second: Hashable) -> None:
        """Merge the sets containing the two items."""
        root_first = self.find(first)
        root_second = self.find(second)
        if root_first == root_second:
            return
        if self._size[root_first] < self._size[root_second]:
            root_first, root_second = root_second, root_first
        self._parent[root_second] = root_first
        self._size[root_first] += self._size[root_second]

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """Whether the two items are in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> list[set]:
        """Return all sets, largest first."""
        by_root: dict = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return sorted(by_root.values(), key=lambda group: (-len(group), repr(sorted(group, key=repr)[:1])))


def connected_components(graph: SimilarityGraph) -> list[set]:
    """Connected components of the similarity graph, largest first."""
    union_find = UnionFind()
    for node in graph.nodes():
        union_find.add(node)
    for first, second, _weight in graph.edges():
        union_find.union(first, second)
    return union_find.groups()


def clusters_from_pairs(pairs: Iterable[SimilarPair],
                        minimum_size: int = 2) -> list[set]:
    """Cluster similar pairs into communities of at least ``minimum_size``."""
    graph = SimilarityGraph.from_pairs(pairs)
    return [component for component in connected_components(graph)
            if len(component) >= minimum_size]


def dense_clusters(graph: SimilarityGraph, minimum_degree_fraction: float = 0.5,
                   minimum_size: int = 2) -> list[set]:
    """Connected components pruned to strongly connected memberships.

    A member is kept only while it is similar to at least
    ``minimum_degree_fraction`` of the other members of its cluster; nodes
    are removed iteratively (lowest in-cluster degree first) until the
    condition holds.  This is a simple densification of the plain connected
    components for graphs where low thresholds chain unrelated entities
    together.
    """
    if not (0.0 < minimum_degree_fraction <= 1.0):
        raise ValueError("minimum_degree_fraction must be in (0, 1]")
    refined: list[set] = []
    for component in connected_components(graph):
        members = set(component)
        while len(members) >= minimum_size:
            degrees = {node: sum(1 for neighbour in graph.neighbours(node)
                                 if neighbour in members)
                       for node in members}
            required = minimum_degree_fraction * (len(members) - 1)
            weakest = min(members, key=lambda node: (degrees[node], repr(node)))
            if degrees[weakest] >= required:
                break
            members.remove(weakest)
        if len(members) >= minimum_size:
            refined.append(members)
    refined.sort(key=lambda group: (-len(group), repr(sorted(group, key=repr)[:1])))
    return refined
