"""IP-similarity graph construction (paper section 1 and 7.4).

The post-processing step of the motivating application connects every pair
of similar IPs with an edge; the connected clusters of the resulting graph
are the candidate load-balancer (proxy) groups.  The graph here is a plain
adjacency-set structure with edge weights equal to the similarity values,
small enough to stay dependency-free while supporting the clustering and
evaluation utilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from repro.core.records import SimilarPair, canonical_pair


@dataclass
class SimilarityGraph:
    """An undirected graph whose edges are similar entity pairs."""

    adjacency: dict = field(default_factory=dict)
    weights: dict = field(default_factory=dict)

    @classmethod
    def from_pairs(cls, pairs: Iterable[SimilarPair]) -> "SimilarityGraph":
        """Build a graph from similar pairs (later duplicates overwrite weights)."""
        graph = cls()
        for pair in pairs:
            graph.add_edge(pair.first, pair.second, pair.similarity)
        return graph

    def add_node(self, node: Hashable) -> None:
        """Ensure a node exists (isolated nodes are allowed)."""
        self.adjacency.setdefault(node, set())

    def add_edge(self, first: Hashable, second: Hashable,
                 similarity: float = 1.0) -> None:
        """Add an undirected weighted edge between two entities."""
        if first == second:
            return
        self.add_node(first)
        self.add_node(second)
        self.adjacency[first].add(second)
        self.adjacency[second].add(first)
        self.weights[canonical_pair(first, second)] = similarity

    def neighbours(self, node: Hashable) -> set:
        """The neighbour set of a node (empty when unknown)."""
        return set(self.adjacency.get(node, set()))

    def edge_weight(self, first: Hashable, second: Hashable) -> float:
        """The similarity of an edge, or 0.0 when absent."""
        return self.weights.get(canonical_pair(first, second), 0.0)

    def has_edge(self, first: Hashable, second: Hashable) -> bool:
        """Whether the two entities were found to be similar."""
        return canonical_pair(first, second) in self.weights

    @property
    def num_nodes(self) -> int:
        """Number of entities appearing in at least one similar pair."""
        return len(self.adjacency)

    @property
    def num_edges(self) -> int:
        """Number of similar pairs."""
        return len(self.weights)

    def nodes(self) -> Iterator[Hashable]:
        """Iterate over the graph's nodes."""
        return iter(self.adjacency)

    def degree(self, node: Hashable) -> int:
        """Number of similar partners of an entity."""
        return len(self.adjacency.get(node, set()))

    def edges(self) -> Iterator[tuple]:
        """Iterate over ``(first, second, similarity)`` edge triples."""
        for (first, second), weight in self.weights.items():
            yield (first, second, weight)
