"""Community discovery post-processing: similarity graphs, clusters, proxies."""

from repro.communities.clustering import (
    UnionFind,
    clusters_from_pairs,
    connected_components,
    dense_clusters,
)
from repro.communities.graph import SimilarityGraph
from repro.communities.proxies import (
    ProxyEvaluation,
    discovered_proxy_groups,
    evaluate_proxy_discovery,
    filter_small_multisets,
    ground_truth_pairs,
)

__all__ = [
    "ProxyEvaluation",
    "SimilarityGraph",
    "UnionFind",
    "clusters_from_pairs",
    "connected_components",
    "dense_clusters",
    "discovered_proxy_groups",
    "evaluate_proxy_discovery",
    "filter_small_multisets",
    "ground_truth_pairs",
]
