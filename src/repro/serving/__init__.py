"""Online similarity serving: incremental indexes, caching nodes, sharded fleets.

This subsystem turns the batch V-SMART-Join reproduction into a queryable
service.  The same partial-result decomposition the joining phase exploits
(unilateral ``Uni`` partials per multiset, conjunctive partials joined
through an inverted posting structure) supports *incremental* maintenance,
so "what is similar to Q?" is answered online without re-running the join:

* :class:`QueryRequest` / :class:`QueryOptions` / :class:`QueryResponse` —
  the unified query API every layer speaks, whose JSON rendering is the
  HTTP wire codec (:mod:`repro.server`);
* :class:`SimilarityIndex` — the core incremental index with threshold and
  top-k queries, stop-word posting pruning and upper-bound early
  termination;
* :class:`ServingNode` — an index behind an invalidating LRU result cache
  with batched query execution;
* :class:`ShardedSimilarityService` — hash-sharded multi-node fan-out with
  a fleet-wide :meth:`~ShardedSimilarityService.snapshot` and per-shard
  :meth:`~ShardedSimilarityService.persist` /
  :meth:`~ShardedSimilarityService.recover`;
* :func:`bootstrap_from_join` — warm-start a fleet from a batch
  :class:`~repro.vsmart.driver.VSmartJoinResult` or pipeline dataset.
"""

from repro.serving.api import (
    QueryMatch,
    QueryOptions,
    QueryRequest,
    QueryResponse,
    finalize_matches,
    multiset_from_wire,
    multiset_to_wire,
    sort_matches,
)
from repro.serving.bootstrap import bootstrap_from_join, multisets_from_input
from repro.serving.cache import LRUResultCache
from repro.serving.index import SimilarityIndex
from repro.serving.node import ServingNode, query_signature
from repro.serving.service import SHARD_SALT, ShardedSimilarityService, shard_for

__all__ = [
    "LRUResultCache",
    "QueryMatch",
    "QueryOptions",
    "QueryRequest",
    "QueryResponse",
    "SHARD_SALT",
    "ServingNode",
    "ShardedSimilarityService",
    "SimilarityIndex",
    "bootstrap_from_join",
    "finalize_matches",
    "multiset_from_wire",
    "multiset_to_wire",
    "multisets_from_input",
    "query_signature",
    "shard_for",
    "sort_matches",
]
