"""An LRU result cache for the serving layer.

Query results are pure functions of the indexed state, so a
:class:`~repro.serving.node.ServingNode` can cache them keyed by the query's
content signature and parameters — as long as every write invalidates the
cache (the indexed state the entries were computed against is gone).  The
replay workloads that motivate the serving subsystem are Zipf-skewed, so a
small LRU holds the popular queries and absorbs most of the traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.core.exceptions import ServingError


class LRUResultCache:
    """A bounded mapping with least-recently-used eviction.

    ``capacity=0`` disables caching entirely (every lookup misses), which
    the benchmarks use to isolate raw index throughput.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ServingError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value (refreshing its recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least recently used entry if full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry; called on each write to the backing index."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, float]:
        """Counters for dashboards and the QPS benchmark."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (f"LRUResultCache(entries={len(self._entries)}/{self.capacity}, "
                f"hit_rate={self.hit_rate:.2f})")
