"""Warm-starting a serving fleet from a batch join.

The intended deployment story mirrors the paper's production setting: the
batch V-SMART-Join pipeline runs periodically over the full log, and the
online serving fleet is (re)built from its output.  :func:`bootstrap_from_join`
covers both halves:

* the *index* is built from the dataset itself — a pipeline
  :class:`~repro.mapreduce.dfs.Dataset` of raw input tuples, raw
  :class:`~repro.core.records.InputTuple` records, or assembled multisets;
* when a join result (a :class:`~repro.vsmart.driver.VSmartJoinResult` or
  an engine :class:`~repro.engine.result.JoinResult`) is supplied, the
  node caches are *warmed* from its similar pairs: for every indexed member
  the threshold-query answer at the join threshold is already known (its
  join partners, plus itself), so member queries hit the cache without ever
  scanning a posting list.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Sequence

from repro.core.exceptions import ServingError
from repro.core.multiset import Multiset
from repro.core.records import (
    InputTuple,
    assemble_multisets,
    resolve_record_type,
)
from repro.mapreduce.backends import ExecutionBackend, SerialBackend
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.dfs import Dataset
from repro.serving.api import QueryMatch, QueryRequest, sort_matches
from repro.serving.service import ShardedSimilarityService
from repro.similarity.base import NominalSimilarityMeasure
from repro.similarity.registry import get_measure
# A "join result" here is duck-typed: a batch
# :class:`~repro.vsmart.driver.VSmartJoinResult`, an engine
# :class:`~repro.engine.result.JoinResult`, or anything shaped like them
# (``.pairs`` plus ``.config`` carrying measure / threshold /
# stop_word_frequency).


def multisets_from_input(
        data: Iterable[Multiset] | Dataset | Sequence[InputTuple] | Mapping,
) -> list[Multiset]:
    """Normalise any pipeline-input shape into a list of multisets."""
    if isinstance(data, Mapping):
        members = list(data.values())
        if members:
            resolve_record_type(members, (Multiset,), ServingError)
        return members
    if isinstance(data, Dataset):
        return list(assemble_multisets(data.records).values())
    materialised = list(data)
    if not materialised:
        return []
    record_type = resolve_record_type(materialised, (Multiset, InputTuple),
                                      ServingError)
    if record_type is Multiset:
        return materialised
    return list(assemble_multisets(materialised).values())


def _is_serial_backend(backend: str | ExecutionBackend) -> bool:
    """Whether ``backend`` is the (default) serial backend in any spelling."""
    if isinstance(backend, ExecutionBackend):
        return isinstance(backend, SerialBackend)
    return backend is None or str(backend).strip().lower() == "serial"


def bootstrap_from_join(
        data: "Iterable[Multiset] | Dataset | Sequence[InputTuple] | Mapping "
              "| str | os.PathLike",
        join_result: object | None = None,
        *, measure: str | NominalSimilarityMeasure | None = None,
        threshold: float | None = None,
        num_shards: int = 1,
        cache_capacity: int | None = None,
        stop_word_frequency: int | None = None,
        run_join: bool = False,
        join_algorithm: str = "online_aggregation",
        cluster: Cluster | None = None,
        backend: str | ExecutionBackend = "serial") -> ShardedSimilarityService:
    """Build a serving fleet from batch data, optionally cache-warmed.

    With ``join_result`` given, the measure and threshold default to the
    join's configuration (explicit arguments must agree with it), and each
    member's threshold-query answer is seeded into its shards' caches from
    the join's similar pairs.  ``cache_capacity`` defaults to whatever is
    large enough to hold every warmed entry (at least 1024); an explicit
    capacity too small to hold the warm-up is rejected rather than letting
    the LRU silently evict most of it.

    With ``run_join=True`` the batch join is executed right here instead of
    being supplied: the engine runs ``join_algorithm`` — any engine
    algorithm, including ``"auto"`` to let the cost-model planner choose —
    on ``cluster`` (or the default laptop cluster), computes the similar
    pairs at ``threshold`` and warms the caches from them.  ``backend``
    selects the pipeline's execution backend (``"serial"``, ``"thread"``,
    ``"process"`` or a backend instance), so a fleet can be warm-started on
    all cores before serving traffic.

    ``join_result`` accepts a legacy
    :class:`~repro.vsmart.driver.VSmartJoinResult` or an engine
    :class:`~repro.engine.result.JoinResult` interchangeably.

    ``data`` also accepts the path of a stored join result (written by
    :meth:`JoinResult.to_sqlite <repro.engine.result.JoinResult.to_sqlite>`):
    the corpus is read from the database, and — unless ``run_join=True``
    or an explicit ``join_result`` overrides it — the stored pairs warm
    the caches, so a fleet restarts from one file, no recomputation.
    """
    if isinstance(data, (str, os.PathLike)):
        from repro.engine.result import JoinResult

        stored = JoinResult.from_sqlite(data, lazy=False)
        data = stored.multisets
        if join_result is None and not run_join:
            join_result = stored
    # Materialise the input exactly once: `data` may be a one-shot iterator,
    # and both the optional inline join and the index build consume it.
    multisets = multisets_from_input(data)
    if run_join:
        if join_result is not None:
            raise ServingError(
                "run_join=True computes the join itself; "
                "do not also pass join_result")
        if threshold is None:
            raise ServingError(
                "run_join=True needs the join threshold; pass threshold=")
        if join_algorithm == "minhash":
            raise ServingError(
                "cannot warm caches from an approximate minhash join: "
                "banding can miss true pairs; pick an exact algorithm "
                "(or \"auto\")")
        # Imported here: the engine package imports this module's input
        # normaliser, so the dependency must stay one-way at import time.
        from repro.engine.engine import SimilarityEngine
        from repro.engine.spec import JoinSpec

        spec = JoinSpec(algorithm=join_algorithm,
                        measure=measure or "ruzicka", threshold=threshold)
        with SimilarityEngine(cluster=cluster, backend=backend) as engine:
            join_result = engine.run(spec, multisets)
    elif not _is_serial_backend(backend):
        raise ServingError(
            "backend= only selects where the batch join runs; "
            "pass run_join=True (or leave backend as 'serial')")
    if join_result is not None:
        join_measure = get_measure(join_result.config.measure)
        if measure is None:
            measure = join_measure
        elif get_measure(measure).name != join_measure.name:
            raise ServingError(
                f"bootstrap measure {get_measure(measure).name!r} does not "
                f"match the join's measure {join_measure.name!r}")
        if threshold is None:
            threshold = join_result.config.threshold
        elif threshold != join_result.config.threshold:
            raise ServingError(
                f"bootstrap threshold {threshold!r} does not match the "
                f"join's threshold {join_result.config.threshold!r}")
        if getattr(join_result.config, "stop_word_frequency", None) is not None:
            raise ServingError(
                "cannot warm caches from a join that discarded stop words: "
                "its pairs were computed on filtered data and would not "
                "match live query results")
        if getattr(join_result, "algorithm", None) == "minhash":
            raise ServingError(
                "cannot warm caches from an approximate minhash join: "
                "banding can miss true pairs, so the warmed answers would "
                "not match what live queries compute once the cache is "
                "invalidated")
        if stop_word_frequency is not None:
            raise ServingError(
                "cannot warm caches for an index with stop-word pruning: "
                "the join's exact pairs would not match what live queries "
                "compute once the cache is invalidated")
    else:
        if threshold is not None:
            raise ServingError(
                "threshold is only meaningful together with a join_result "
                "(it selects which cached answers to warm); queries take "
                "their own threshold per call")
        if measure is None:
            measure = "ruzicka"

    # Each member warms one entry in every shard's cache, so each node needs
    # room for len(multisets) entries to retain the whole warm-up.
    if cache_capacity is None:
        cache_capacity = max(1024, len(multisets)) if join_result is not None \
            else 1024
    elif join_result is not None and cache_capacity < len(multisets):
        raise ServingError(
            f"cache_capacity {cache_capacity} cannot hold warm entries for "
            f"{len(multisets)} multisets; pass cache_capacity >= "
            f"{len(multisets)} or omit it to auto-size")
    service = ShardedSimilarityService(measure, num_shards,
                                       cache_capacity=cache_capacity,
                                       stop_word_frequency=stop_word_frequency)
    service.bulk_load(multisets)

    if join_result is not None and threshold is not None:
        _warm_from_pairs(service, multisets, join_result, threshold)
    return service


def warm_member_caches(nodes, shard_for, members: Sequence[Multiset],
                       matches_for, threshold: float) -> None:
    """Seed each member's threshold-query answer across the shard caches.

    ``matches_for(member)`` supplies the member's partner matches at
    ``threshold`` (self excluded); the member's own entry is derived from
    its already-indexed ``Uni`` partials and appended when its
    self-similarity reaches the threshold.  A threshold query fans out to
    every node, so each node is seeded with its own shard's slice of the
    answer.  Shared by the join bootstrap and the streaming serving
    subscriber, so the warming algorithm exists exactly once.
    """
    if not nodes:
        return
    measure = nodes[0].measure
    for member in members:
        matches = list(matches_for(member))
        uni = nodes[shard_for(member.id)].index.uni(member.id)
        self_similarity = measure.combine(uni, uni,
                                          measure.conjunctive(member, member))
        if self_similarity >= threshold:
            matches.append(QueryMatch(member.id, self_similarity))
        per_shard: dict[int, list[QueryMatch]] = {
            shard: [] for shard in range(len(nodes))}
        for match in matches:
            per_shard[shard_for(match.multiset_id)].append(match)
        request = QueryRequest.threshold(member, threshold)
        for shard, shard_matches in per_shard.items():
            nodes[shard].warm(request, sort_matches(shard_matches))


def _warm_from_pairs(service: ShardedSimilarityService,
                     multisets: Sequence[Multiset],
                     join_result: object,
                     threshold: float) -> None:
    """Seed every shard's cache with the join's per-member answers."""
    indexed_ids = {member.id for member in multisets}
    partners: dict = {}
    for pair in join_result.pairs:
        for multiset_id in (pair.first, pair.second):
            if multiset_id not in indexed_ids:
                raise ServingError(
                    f"join result references multiset {multiset_id!r} which "
                    "is not in the bootstrap data; cache warm-up needs the "
                    "join and the data to describe the same collection")
        partners.setdefault(pair.first, []).append(
            QueryMatch(pair.second, pair.similarity))
        partners.setdefault(pair.second, []).append(
            QueryMatch(pair.first, pair.similarity))

    warm_member_caches(service.nodes, service.shard_for, multisets,
                       lambda member: partners.get(member.id, []), threshold)
