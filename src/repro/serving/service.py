"""Hash-sharded multi-node fan-out over serving nodes.

The service partitions the indexed multisets over ``num_shards`` nodes by a
stable hash of their identifiers — the same content-hash routing idiom as
the Sharding joining algorithm's element fingerprints
(:func:`repro.vsmart.sharding.element_fingerprint`), so shard assignment is
deterministic across processes and restarts.  Writes touch exactly one
node; queries fan out to every node and merge:

* threshold queries concatenate the per-shard answers (shards are disjoint,
  so no deduplication is needed) and re-sort;
* top-k queries take the top k of each shard and keep the global top k of
  the union — correct because every shard returns its k best, so nothing
  outside the merged union can enter the global top k.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.core.exceptions import ServingError
from repro.core.multiset import Multiset, MultisetId
from repro.mapreduce.partitioner import stable_hash
from repro.serving.api import (
    QueryMatch,
    QueryRequest,
    QueryResponse,
    deprecated_query_form,
    finalize_matches,
)
from repro.serving.index import SimilarityIndex
from repro.serving.node import ServingNode
from repro.similarity.base import NominalSimilarityMeasure

#: Salt separating shard routing from the other stable-hash users.
SHARD_SALT = "serving-shard"


def shard_for(multiset_id: MultisetId, num_shards: int) -> int:
    """The shard owning ``multiset_id`` (stable across processes)."""
    if num_shards <= 0:
        raise ServingError(f"num_shards must be >= 1, got {num_shards}")
    return stable_hash(multiset_id, salt=SHARD_SALT) % num_shards


class ShardedSimilarityService:
    """A fleet of serving nodes behind a single query API."""

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 num_shards: int = 4, *, cache_capacity: int = 1024,
                 stop_word_frequency: int | None = None,
                 intern: bool = True) -> None:
        if num_shards < 1:
            raise ServingError(f"num_shards must be >= 1, got {num_shards}")
        self.nodes = [
            ServingNode(measure, cache_capacity=cache_capacity,
                        stop_word_frequency=stop_word_frequency,
                        intern=intern,
                        name=f"node{shard}")
            for shard in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        """Number of shards (= serving nodes) in the fleet."""
        return len(self.nodes)

    @property
    def measure(self) -> NominalSimilarityMeasure:
        """The measure the fleet serves."""
        return self.nodes[0].measure

    @property
    def cache_capacity(self) -> int:
        """Per-node LRU result-cache capacity."""
        return self.nodes[0].cache.capacity

    def __len__(self) -> int:
        return sum(len(node) for node in self.nodes)

    def __contains__(self, multiset_id: object) -> bool:
        return any(multiset_id in node for node in self.nodes)

    def shard_for(self, multiset_id: MultisetId) -> int:
        """The shard this identifier routes to."""
        return shard_for(multiset_id, self.num_shards)

    def node_for(self, multiset_id: MultisetId) -> ServingNode:
        """The node owning this identifier."""
        return self.nodes[self.shard_for(multiset_id)]

    # -- writes (routed to the owning shard) -----------------------------------

    def add(self, multiset: Multiset, replace: bool = False) -> None:
        """Index a multiset on its owning shard."""
        self.node_for(multiset.id).add(multiset, replace=replace)

    def remove(self, multiset_id: MultisetId) -> None:
        """Drop a multiset from its owning shard."""
        self.node_for(multiset_id).remove(multiset_id)

    def bulk_load(self, multisets: Iterable[Multiset],
                  replace: bool = False) -> int:
        """Partition a collection over the shards; returns the count indexed."""
        per_shard: dict[int, list[Multiset]] = {}
        for multiset in multisets:
            per_shard.setdefault(self.shard_for(multiset.id), []).append(multiset)
        return sum(self.nodes[shard].bulk_load(batch, replace=replace)
                   for shard, batch in per_shard.items())

    # -- queries (fan out to every shard, merge) -------------------------------

    def query(self, request: QueryRequest) -> QueryResponse:
        """Answer one unified-API query across all shards, merged.

        Threshold answers concatenate the per-shard answers (shards are
        disjoint, so no deduplication is needed) and re-sort; top-k answers
        keep the global best ``k`` of the per-shard top-k union — correct
        because every shard returns its own k best.
        """
        merged: list[QueryMatch] = []
        for node in self.nodes:
            merged.extend(node.query(request).matches)
        return QueryResponse(finalize_matches(merged, request.options),
                             request.options)

    def batch(self, requests: Sequence[QueryRequest]) -> list[QueryResponse]:
        """Execute a batch of requests: one per-shard batch, merged per item."""
        per_node = [node.batch(requests) for node in self.nodes]
        return [QueryResponse(
                    finalize_matches(
                        [match for responses in per_node
                         for match in responses[position].matches],
                        request.options),
                    request.options)
                for position, request in enumerate(requests)]

    def query_threshold(self, query: Multiset,
                        threshold: float) -> list[QueryMatch]:
        """Deprecated alias of ``query(QueryRequest.threshold(...))``.

        .. deprecated:: 1.6
            Use :meth:`query`; this form returns the same matches as
            ``query(...).matches``.
        """
        deprecated_query_form(
            "ShardedSimilarityService.query_threshold(query, threshold)",
            "ShardedSimilarityService.query(QueryRequest.threshold(query, "
            "threshold))")
        return list(self.query(QueryRequest.threshold(query, threshold)))

    def query_topk(self, query: Multiset, k: int) -> list[QueryMatch]:
        """Deprecated alias of ``query(QueryRequest.topk(...))``.

        .. deprecated:: 1.6
            Use :meth:`query`; this form returns the same matches as
            ``query(...).matches``.
        """
        deprecated_query_form(
            "ShardedSimilarityService.query_topk(query, k)",
            "ShardedSimilarityService.query(QueryRequest.topk(query, k))")
        return list(self.query(QueryRequest.topk(query, k)))

    def batch_threshold(self, queries: Sequence[Multiset],
                        threshold: float) -> list[list[QueryMatch]]:
        """Deprecated alias of :meth:`batch` over threshold requests.

        .. deprecated:: 1.6
            Use :meth:`batch` with :class:`QueryRequest` items.
        """
        deprecated_query_form(
            "ShardedSimilarityService.batch_threshold(queries, threshold)",
            "ShardedSimilarityService.batch([QueryRequest.threshold(q, "
            "threshold) ...])")
        return [list(response) for response in self.batch(
            [QueryRequest.threshold(query, threshold) for query in queries])]

    def batch_topk(self, queries: Sequence[Multiset],
                   k: int) -> list[list[QueryMatch]]:
        """Deprecated alias of :meth:`batch` over top-k requests.

        .. deprecated:: 1.6
            Use :meth:`batch` with :class:`QueryRequest` items.
        """
        deprecated_query_form(
            "ShardedSimilarityService.batch_topk(queries, k)",
            "ShardedSimilarityService.batch([QueryRequest.topk(q, k) ...])")
        return [list(response) for response in self.batch(
            [QueryRequest.topk(query, k) for query in queries])]

    def neighbours(self, multiset_id: MultisetId,
                   threshold: float) -> list[QueryMatch]:
        """Threshold partners of an indexed member, excluding itself."""
        member = self.node_for(multiset_id).index.get(multiset_id)
        if member is None:
            raise ServingError(f"multiset {multiset_id!r} is not indexed")
        matches = self.query(QueryRequest.threshold(member, threshold)).matches
        return [match for match in matches
                if match.multiset_id != multiset_id]

    # -- persistence (one SQLite file per shard) -------------------------------

    def persist(self, directory: str | os.PathLike) -> list[str]:
        """Save every shard's index into ``directory``; returns the paths.

        One SQLite file per shard (``shard0000.sqlite``, ...), each written
        through :meth:`ServingNode.persist
        <repro.serving.node.ServingNode.persist>`.  :meth:`recover` restores
        the fleet from the directory with bit-identical query answers —
        shard routing is a stable content hash, so the shard count and
        assignment survive the round-trip.
        """
        os.makedirs(directory, exist_ok=True)
        paths: list[str] = []
        for shard, node in enumerate(self.nodes):
            path = os.path.join(os.fspath(directory),
                                f"shard{shard:04d}.sqlite")
            node.persist(path)
            paths.append(path)
        return paths

    @classmethod
    def recover(cls, directory: str | os.PathLike, *,
                cache_capacity: int = 1024) -> "ShardedSimilarityService":
        """Restore a fleet persisted by :meth:`persist`.

        The shard count is the number of ``shard*.sqlite`` files; each
        node's index (measure, stop-word setting, interning, postings, Uni
        partials) is loaded exactly, so the recovered service answers every
        query identically to the one that persisted.  Result caches start
        cold — they are version-keyed memoisation, rebuilt by traffic.
        """
        shard_files = sorted(
            entry for entry in os.listdir(directory)
            if entry.startswith("shard") and entry.endswith(".sqlite"))
        if not shard_files:
            raise ServingError(
                f"no shard*.sqlite files found in {os.fspath(directory)!r}; "
                "was the directory written by ShardedSimilarityService"
                ".persist()?")
        indexes = [SimilarityIndex.load(os.path.join(os.fspath(directory),
                                                     entry))
                   for entry in shard_files]
        measures = {index.measure.name for index in indexes}
        if len(measures) > 1:
            raise ServingError(
                f"shard files disagree on the measure: {sorted(measures)}")
        service = cls(indexes[0].measure, len(indexes),
                      cache_capacity=cache_capacity,
                      stop_word_frequency=indexes[0].stop_word_frequency)
        for node, index in zip(service.nodes, indexes):
            node.index = index
        return service

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Fleet totals: per-node statistics summed over all nodes.

        Counters and capacities sum meaningfully (``cache/capacity`` is the
        fleet's total cache room); ``cache/hit_rate`` is recomputed from the
        summed hits and misses, and per-node-only gauges (``index_version``)
        are omitted — read them from ``node.stats()`` directly.
        """
        merged: dict[str, float] = {}
        for node in self.nodes:
            for stat, value in node.stats().items():
                merged[stat] = merged.get(stat, 0) + value
        merged.pop("index_version", None)
        merged["num_shards"] = self.num_shards
        lookups = merged.get("cache/hits", 0) + merged.get("cache/misses", 0)
        merged["cache/hit_rate"] = (merged.get("cache/hits", 0) / lookups
                                    if lookups else 0.0)
        return merged

    def per_node_stats(self) -> dict[str, dict[str, float]]:
        """Per-node statistics keyed by node name.

        The fleet totals of :meth:`stats` hide which shard is hot; this
        breakdown exposes every node's own counters — including its cache
        hit/miss/eviction counts — for dashboards that chart load balance.
        """
        return {node.name: node.stats() for node in self.nodes}

    def snapshot(self) -> dict:
        """One health/statistics document for the whole fleet.

        Aggregates everything callers previously assembled by poking nodes:
        the identity of the fleet (measure, shard count, indexed members),
        the summed counters of :meth:`stats` (cache hits/misses/evictions
        included) and the per-node breakdown of :meth:`per_node_stats`.
        The HTTP ``/stats`` endpoint returns exactly this document, with
        the server's own queue statistics merged alongside.
        """
        return {
            "measure": self.measure.name,
            "num_shards": self.num_shards,
            "indexed_multisets": len(self),
            "totals": self.stats(),
            "per_node": self.per_node_stats(),
        }

    def __repr__(self) -> str:
        return (f"ShardedSimilarityService(measure={self.measure.name!r}, "
                f"shards={self.num_shards}, multisets={len(self)})")
