"""One serving node: an index plus a result cache and batched execution.

:class:`ServingNode` is the unit of deployment of the serving subsystem —
the sharded service is simply a hash-routed collection of nodes.  It adds
two production concerns on top of the raw
:class:`~repro.serving.index.SimilarityIndex`:

* an LRU result cache keyed by the query's *content signature* (identifier
  ignored — two queries with the same elements and multiplicities are the
  same query) together with the index's write version, so cached answers
  can never go stale — even writes applied directly to ``node.index``
  orphan the old entries.  Writes through the node additionally clear the
  cache to reclaim the memory of those unreachable entries;
* batched query execution that computes each distinct query signature once
  per batch and fans the result back out, so replayed/duplicated traffic
  pays one index scan even when the cache is cold or disabled.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.multiset import Multiset, MultisetId, content_signature
from repro.serving.cache import LRUResultCache
from repro.serving.index import QueryMatch, SimilarityIndex
from repro.similarity.base import NominalSimilarityMeasure


def query_signature(query: Multiset) -> frozenset:
    """The cache key of a query: its content signature, identifier ignored.

    Two multisets with equal contents produce equal signatures regardless of
    their identifiers or construction order, which is exactly the equality
    the result cache needs.
    """
    return content_signature(query)


class ServingNode:
    """A similarity index fronted by an invalidating LRU result cache."""

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 *, cache_capacity: int = 1024,
                 stop_word_frequency: int | None = None,
                 intern: bool = True,
                 name: str = "node0") -> None:
        self.index = SimilarityIndex(measure,
                                     stop_word_frequency=stop_word_frequency,
                                     intern=intern)
        self.cache = LRUResultCache(cache_capacity)
        self.name = name

    @property
    def measure(self) -> NominalSimilarityMeasure:
        """The measure this node serves."""
        return self.index.measure

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, multiset_id: object) -> bool:
        return multiset_id in self.index

    # -- writes (every write invalidates the cache) ----------------------------

    def add(self, multiset: Multiset, replace: bool = False) -> None:
        """Index a multiset and invalidate cached results."""
        self.index.add(multiset, replace=replace)
        self.cache.invalidate()

    def remove(self, multiset_id: MultisetId) -> None:
        """Drop a multiset and invalidate cached results."""
        self.index.remove(multiset_id)
        self.cache.invalidate()

    def bulk_load(self, multisets: Iterable[Multiset],
                  replace: bool = False) -> int:
        """Add many multisets under a single cache invalidation.

        The invalidation runs even when a record part-way through the batch
        is rejected — the index has already been mutated by then, so cached
        results must not survive the failure.
        """
        try:
            return self.index.bulk_load(multisets, replace=replace)
        finally:
            self.cache.invalidate()

    # -- persistence -----------------------------------------------------------

    def persist(self, destination) -> None:
        """Save this node's index to a SQLite database (path or engine).

        Convenience over
        :meth:`SimilarityIndex.save <repro.serving.index.SimilarityIndex.save>`;
        the result cache is deliberately not persisted (it is a
        version-keyed memoisation, rebuilt for free by live traffic).  A
        node restarted over ``SimilarityIndex.load(path)`` answers every
        query identically to the one that persisted.
        """
        self.index.save(destination)

    # -- queries ---------------------------------------------------------------

    def _threshold_key(self, query: Multiset, threshold: float) -> tuple:
        """The cache key of a threshold query; shared with warm_threshold.

        Includes the index's write version so entries from before any write
        — including writes applied directly to :attr:`index` — can never be
        returned for the mutated state.
        """
        return ("threshold", self.index.version, query_signature(query),
                float(threshold))

    def _cached(self, key: tuple, compute) -> list[QueryMatch]:
        cached = self.cache.get(key)
        if cached is not None:
            return list(cached)
        matches = compute()
        self.cache.put(key, tuple(matches))
        return matches

    def query_threshold(self, query: Multiset,
                        threshold: float) -> list[QueryMatch]:
        """Cached threshold query against this node's index."""
        return self._cached(self._threshold_key(query, threshold),
                            lambda: self.index.query_threshold(query, threshold))

    def query_topk(self, query: Multiset, k: int) -> list[QueryMatch]:
        """Cached top-k query against this node's index."""
        return self._cached(
            ("topk", self.index.version, query_signature(query), int(k)),
            lambda: self.index.query_topk(query, k))

    def batch_threshold(self, queries: Sequence[Multiset],
                        threshold: float) -> list[list[QueryMatch]]:
        """Execute a batch of threshold queries, one scan per distinct query."""
        return self._batch(queries,
                           lambda query: self.query_threshold(query, threshold))

    def batch_topk(self, queries: Sequence[Multiset],
                   k: int) -> list[list[QueryMatch]]:
        """Execute a batch of top-k queries, one scan per distinct query."""
        return self._batch(queries, lambda query: self.query_topk(query, k))

    def _batch(self, queries: Sequence[Multiset],
               execute) -> list[list[QueryMatch]]:
        results_by_signature: dict[frozenset, list[QueryMatch]] = {}
        results: list[list[QueryMatch]] = []
        for query in queries:
            signature = query_signature(query)
            if signature not in results_by_signature:
                results_by_signature[signature] = execute(query)
            results.append(list(results_by_signature[signature]))
        return results

    # -- cache warm-up (used by the join bootstrap) ----------------------------

    def warm_threshold(self, query: Multiset, threshold: float,
                       matches: Sequence[QueryMatch]) -> None:
        """Seed the cache with a precomputed threshold-query result."""
        self.cache.put(self._threshold_key(query, threshold), tuple(matches))

    # -- observability ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Lookups served from the result cache since the node was created."""
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        """Lookups that had to scan the index."""
        return self.cache.misses

    @property
    def cache_evictions(self) -> int:
        """Entries evicted by LRU capacity pressure (invalidations excluded)."""
        return self.cache.evictions

    def stats(self) -> dict[str, float]:
        """Index counters merged with cache statistics."""
        merged: dict[str, float] = dict(self.index.counters())
        for stat, value in self.cache.stats().items():
            merged[f"cache/{stat}"] = value
        merged["indexed_multisets"] = len(self.index)
        merged["index_version"] = self.index.version
        return merged

    def __repr__(self) -> str:
        return (f"ServingNode(name={self.name!r}, "
                f"measure={self.index.measure.name!r}, "
                f"multisets={len(self.index)})")
