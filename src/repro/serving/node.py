"""One serving node: an index plus a result cache and batched execution.

:class:`ServingNode` is the unit of deployment of the serving subsystem —
the sharded service is simply a hash-routed collection of nodes.  It adds
two production concerns on top of the raw
:class:`~repro.serving.index.SimilarityIndex`:

* an LRU result cache keyed by the query's *content signature* (identifier
  ignored — two queries with the same elements and multiplicities are the
  same query) together with the index's write version, so cached answers
  can never go stale — even writes applied directly to ``node.index``
  orphan the old entries.  Writes through the node additionally clear the
  cache to reclaim the memory of those unreachable entries;
* batched query execution that computes each distinct query signature once
  per batch and fans the result back out, so replayed/duplicated traffic
  pays one index scan even when the cache is cold or disabled.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.multiset import Multiset, MultisetId, content_signature
from repro.serving.api import (
    QueryMatch,
    QueryRequest,
    QueryResponse,
    deprecated_query_form,
)
from repro.serving.cache import LRUResultCache
from repro.serving.index import SimilarityIndex
from repro.similarity.base import NominalSimilarityMeasure


def query_signature(query: Multiset) -> frozenset:
    """The cache key of a query: its content signature, identifier ignored.

    Two multisets with equal contents produce equal signatures regardless of
    their identifiers or construction order, which is exactly the equality
    the result cache needs.
    """
    return content_signature(query)


class ServingNode:
    """A similarity index fronted by an invalidating LRU result cache."""

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 *, cache_capacity: int = 1024,
                 stop_word_frequency: int | None = None,
                 intern: bool = True,
                 name: str = "node0") -> None:
        self.index = SimilarityIndex(measure,
                                     stop_word_frequency=stop_word_frequency,
                                     intern=intern)
        self.cache = LRUResultCache(cache_capacity)
        self.name = name

    @property
    def measure(self) -> NominalSimilarityMeasure:
        """The measure this node serves."""
        return self.index.measure

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, multiset_id: object) -> bool:
        return multiset_id in self.index

    # -- writes (every write invalidates the cache) ----------------------------

    def add(self, multiset: Multiset, replace: bool = False) -> None:
        """Index a multiset and invalidate cached results."""
        self.index.add(multiset, replace=replace)
        self.cache.invalidate()

    def remove(self, multiset_id: MultisetId) -> None:
        """Drop a multiset and invalidate cached results."""
        self.index.remove(multiset_id)
        self.cache.invalidate()

    def bulk_load(self, multisets: Iterable[Multiset],
                  replace: bool = False) -> int:
        """Add many multisets under a single cache invalidation.

        The invalidation runs even when a record part-way through the batch
        is rejected — the index has already been mutated by then, so cached
        results must not survive the failure.
        """
        try:
            return self.index.bulk_load(multisets, replace=replace)
        finally:
            self.cache.invalidate()

    # -- persistence -----------------------------------------------------------

    def persist(self, destination) -> None:
        """Save this node's index to a SQLite database (path or engine).

        Convenience over
        :meth:`SimilarityIndex.save <repro.serving.index.SimilarityIndex.save>`;
        the result cache is deliberately not persisted (it is a
        version-keyed memoisation, rebuilt for free by live traffic).  A
        node restarted over ``SimilarityIndex.load(path)`` answers every
        query identically to the one that persisted.
        """
        self.index.save(destination)

    # -- queries ---------------------------------------------------------------

    def _request_key(self, request: QueryRequest) -> tuple:
        """The cache key of a unified-API request.

        Includes the index's write version so entries from before any write
        — including writes applied directly to :attr:`index` — can never be
        returned for the mutated state.  The options dataclass is frozen
        and hashable, so one key shape covers every query kind.
        """
        return (request.options, self.index.version,
                query_signature(request.query))

    def query(self, request: QueryRequest) -> QueryResponse:
        """Answer one unified-API query, served from the result cache."""
        key = self._request_key(request)
        matches = self.cache.get(key)
        if matches is None:
            matches = self.index.query(request).matches
            self.cache.put(key, matches)
        return QueryResponse(matches, request.options)

    def batch(self, requests: Sequence[QueryRequest]) -> list[QueryResponse]:
        """Execute a batch of requests, one index scan per distinct request.

        Distinctness is by content signature *and* options, so replayed or
        coalesced traffic pays a single scan even when the cache is cold or
        disabled; the computed answer fans back out to every duplicate.
        """
        responses_by_key: dict[tuple, QueryResponse] = {}
        responses: list[QueryResponse] = []
        for request in requests:
            key = self._request_key(request)
            response = responses_by_key.get(key)
            if response is None:
                response = self.query(request)
                responses_by_key[key] = response
            responses.append(response)
        return responses

    def query_threshold(self, query: Multiset,
                        threshold: float) -> list[QueryMatch]:
        """Deprecated alias of ``query(QueryRequest.threshold(...))``.

        .. deprecated:: 1.6
            Use :meth:`query`; this form returns the same matches as
            ``query(...).matches``.
        """
        deprecated_query_form(
            "ServingNode.query_threshold(query, threshold)",
            "ServingNode.query(QueryRequest.threshold(query, threshold))")
        return list(self.query(QueryRequest.threshold(query, threshold)))

    def query_topk(self, query: Multiset, k: int) -> list[QueryMatch]:
        """Deprecated alias of ``query(QueryRequest.topk(...))``.

        .. deprecated:: 1.6
            Use :meth:`query`; this form returns the same matches as
            ``query(...).matches``.
        """
        deprecated_query_form(
            "ServingNode.query_topk(query, k)",
            "ServingNode.query(QueryRequest.topk(query, k))")
        return list(self.query(QueryRequest.topk(query, k)))

    def batch_threshold(self, queries: Sequence[Multiset],
                        threshold: float) -> list[list[QueryMatch]]:
        """Deprecated alias of :meth:`batch` over threshold requests.

        .. deprecated:: 1.6
            Use :meth:`batch` with :class:`QueryRequest` items.
        """
        deprecated_query_form(
            "ServingNode.batch_threshold(queries, threshold)",
            "ServingNode.batch([QueryRequest.threshold(q, threshold) ...])")
        return [list(response) for response in self.batch(
            [QueryRequest.threshold(query, threshold) for query in queries])]

    def batch_topk(self, queries: Sequence[Multiset],
                   k: int) -> list[list[QueryMatch]]:
        """Deprecated alias of :meth:`batch` over top-k requests.

        .. deprecated:: 1.6
            Use :meth:`batch` with :class:`QueryRequest` items.
        """
        deprecated_query_form(
            "ServingNode.batch_topk(queries, k)",
            "ServingNode.batch([QueryRequest.topk(q, k) ...])")
        return [list(response) for response in self.batch(
            [QueryRequest.topk(query, k) for query in queries])]

    # -- cache warm-up (used by the join bootstrap) ----------------------------

    def warm(self, request: QueryRequest,
             matches: Sequence[QueryMatch]) -> None:
        """Seed the cache with a precomputed answer for ``request``."""
        self.cache.put(self._request_key(request), tuple(matches))

    def warm_threshold(self, query: Multiset, threshold: float,
                       matches: Sequence[QueryMatch]) -> None:
        """Deprecated alias of :meth:`warm` for threshold requests.

        .. deprecated:: 1.6
            Use ``warm(QueryRequest.threshold(query, threshold), matches)``.
        """
        deprecated_query_form(
            "ServingNode.warm_threshold(query, threshold, matches)",
            "ServingNode.warm(QueryRequest.threshold(query, threshold), "
            "matches)")
        self.warm(QueryRequest.threshold(query, threshold), matches)

    # -- observability ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Lookups served from the result cache since the node was created."""
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        """Lookups that had to scan the index."""
        return self.cache.misses

    @property
    def cache_evictions(self) -> int:
        """Entries evicted by LRU capacity pressure (invalidations excluded)."""
        return self.cache.evictions

    def stats(self) -> dict[str, float]:
        """Index counters merged with cache statistics."""
        merged: dict[str, float] = dict(self.index.counters())
        for stat, value in self.cache.stats().items():
            merged[f"cache/{stat}"] = value
        merged["indexed_multisets"] = len(self.index)
        merged["index_version"] = self.index.version
        return merged

    def __repr__(self) -> str:
        return (f"ServingNode(name={self.name!r}, "
                f"measure={self.index.measure.name!r}, "
                f"multisets={len(self.index)})")
