"""The unified query/response API of the serving subsystem.

Every query entry point — :class:`~repro.serving.index.SimilarityIndex`,
:class:`~repro.serving.node.ServingNode`,
:class:`~repro.serving.service.ShardedSimilarityService` and the HTTP wire
layer (:mod:`repro.server`) — speaks one request/response dataclass family:

* :class:`QueryOptions` — *what kind* of answer is wanted: a threshold scan
  (all members at least ``threshold`` similar) or a top-k ranking;
* :class:`QueryRequest` — a query multiset together with its options;
* :class:`QueryResponse` — the sorted matches, echoing the options they
  answer.

The JSON renderings (``to_json_dict`` / ``from_json_dict``) *are* the wire
codec: what the HTTP server transports is exactly what the Python API
round-trips, so a response received over the wire compares equal to the
response a direct in-process call returns.  Wire payloads restrict
identifiers and elements to JSON scalars (``str``, ``int``, ``float``,
``bool``, ``None``); richer hashables remain usable in process, they just
cannot travel.

Before this module, each layer grew its own keyword signature
(``query_threshold(query, threshold)`` / ``query_topk(query, k)`` /
``batch_threshold(queries, threshold)`` ...); those forms survive as thin
deprecated aliases around :meth:`query`/:meth:`batch` and return the same
matches bit-for-bit.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.exceptions import ServingError
from repro.core.multiset import Multiset, MultisetId
from repro.similarity.base import validate_threshold

#: The two query kinds of the serving API.
THRESHOLD_KIND = "threshold"
TOPK_KIND = "topk"

#: Scalar types that survive the JSON wire codec exactly.
_WIRE_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class QueryMatch:
    """One query answer: an indexed multiset and its similarity to the query."""

    multiset_id: MultisetId
    similarity: float


def sort_matches(matches: Iterable[QueryMatch]) -> list[QueryMatch]:
    """Sort matches by descending similarity, identifiers breaking ties.

    Every query path (single index, cached node, sharded fan-out merge and
    cache warm-up) sorts through this one function so results are
    deterministic and mutually consistent.
    """
    materialised = list(matches)
    try:
        return sorted(materialised,
                      key=lambda match: (-match.similarity, match.multiset_id))
    except TypeError:
        # Mixed identifier types are not mutually comparable; fall back to
        # their representation, as the batch record types do.
        return sorted(materialised,
                      key=lambda match: (-match.similarity, repr(match.multiset_id)))


def deprecated_query_form(old: str, new: str) -> None:
    """Emit the serving API's deprecation warning for a legacy entry point.

    ``stacklevel=3`` points the warning at the caller of the deprecated
    method (every alias is exactly one frame deep).
    """
    warnings.warn(
        f"{old} is deprecated; use {new} (see the unified query API in "
        "repro.serving.api)",
        DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class QueryOptions:
    """What kind of answer a query wants.

    Exactly one of ``threshold`` (for ``kind="threshold"``) and ``k`` (for
    ``kind="topk"``) is set; the constructors :meth:`for_threshold` and
    :meth:`for_topk` are the convenient spellings.  Instances are frozen
    and hashable — the serving result cache keys on them directly.
    """

    kind: str = THRESHOLD_KIND
    threshold: float | None = None
    k: int | None = None

    def __post_init__(self) -> None:
        if self.kind == THRESHOLD_KIND:
            if self.threshold is None:
                raise ServingError(
                    "threshold queries need threshold=; got None")
            if self.k is not None:
                raise ServingError(
                    "threshold queries do not take k= "
                    f"(got k={self.k!r}); use kind='topk' for rankings")
            try:
                object.__setattr__(self, "threshold",
                                   float(validate_threshold(self.threshold)))
            except (TypeError, ValueError) as error:
                raise ServingError(str(error)) from None
        elif self.kind == TOPK_KIND:
            if self.k is None:
                raise ServingError("top-k queries need k=; got None")
            if self.threshold is not None:
                raise ServingError(
                    "top-k queries do not take threshold= "
                    f"(got threshold={self.threshold!r})")
            if not isinstance(self.k, int) or isinstance(self.k, bool) \
                    or self.k < 1:
                raise ServingError(
                    f"top-k queries need an int k >= 1, got {self.k!r}")
        else:
            raise ServingError(
                f"unknown query kind {self.kind!r}; expected "
                f"{THRESHOLD_KIND!r} or {TOPK_KIND!r}")

    @classmethod
    def for_threshold(cls, threshold: float) -> "QueryOptions":
        """Options of a threshold scan at ``threshold``."""
        return cls(kind=THRESHOLD_KIND, threshold=threshold)

    @classmethod
    def for_topk(cls, k: int) -> "QueryOptions":
        """Options of a top-``k`` ranking."""
        return cls(kind=TOPK_KIND, k=k)

    def to_json_dict(self) -> dict:
        """The wire rendering of these options."""
        if self.kind == THRESHOLD_KIND:
            return {"kind": self.kind, "threshold": self.threshold}
        return {"kind": self.kind, "k": self.k}

    @classmethod
    def from_json_dict(cls, payload: object) -> "QueryOptions":
        """Parse a wire rendering; raises :class:`ServingError` when invalid."""
        if not isinstance(payload, dict):
            raise ServingError(
                f"query options must be a JSON object, got "
                f"{type(payload).__name__}")
        unknown = set(payload) - {"kind", "threshold", "k"}
        if unknown:
            raise ServingError(
                f"unknown query-option field(s): {sorted(unknown)}")
        return cls(kind=payload.get("kind", THRESHOLD_KIND),
                   threshold=payload.get("threshold"),
                   k=payload.get("k"))


@dataclass(frozen=True)
class QueryRequest:
    """One similarity query: the query multiset plus its options."""

    query: Multiset
    options: QueryOptions

    def __post_init__(self) -> None:
        if not isinstance(self.query, Multiset):
            raise ServingError(
                f"QueryRequest.query must be a Multiset, got "
                f"{type(self.query).__name__}")
        if not isinstance(self.options, QueryOptions):
            raise ServingError(
                f"QueryRequest.options must be QueryOptions, got "
                f"{type(self.options).__name__}")

    @classmethod
    def threshold(cls, query: Multiset, threshold: float) -> "QueryRequest":
        """A threshold scan for ``query`` at ``threshold``."""
        return cls(query, QueryOptions.for_threshold(threshold))

    @classmethod
    def topk(cls, query: Multiset, k: int) -> "QueryRequest":
        """A top-``k`` ranking for ``query``."""
        return cls(query, QueryOptions.for_topk(k))

    def to_json_dict(self) -> dict:
        """The wire rendering of this request."""
        return {"query": multiset_to_wire(self.query),
                "options": self.options.to_json_dict()}

    @classmethod
    def from_json_dict(cls, payload: object) -> "QueryRequest":
        """Parse a wire rendering; raises :class:`ServingError` when invalid."""
        if not isinstance(payload, dict):
            raise ServingError(
                f"a query request must be a JSON object, got "
                f"{type(payload).__name__}")
        if "query" not in payload:
            raise ServingError("query request is missing the 'query' field")
        if "options" not in payload:
            raise ServingError("query request is missing the 'options' field")
        return cls(multiset_from_wire(payload["query"]),
                   QueryOptions.from_json_dict(payload["options"]))


@dataclass(frozen=True)
class QueryResponse:
    """The answer to one :class:`QueryRequest`: sorted matches + options.

    Behaves as a sequence of :class:`~repro.serving.index.QueryMatch`
    (iteration, indexing, ``len``).  Two responses are equal exactly when
    their matches and options are equal — the property the wire-parity
    tests assert between HTTP and direct in-process calls.
    """

    matches: tuple[QueryMatch, ...]
    options: QueryOptions
    # Normalised in __post_init__ so callers can pass any iterable.
    def __post_init__(self) -> None:
        object.__setattr__(self, "matches", tuple(self.matches))

    def __iter__(self) -> Iterator[QueryMatch]:
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    def __getitem__(self, position):
        return self.matches[position]

    def ids(self) -> list:
        """The matched identifiers, best first."""
        return [match.multiset_id for match in self.matches]

    def to_json_dict(self) -> dict:
        """The wire rendering of this response."""
        return {"matches": [{"id": _wire_scalar(match.multiset_id,
                                                "match identifier"),
                             "similarity": float(match.similarity)}
                            for match in self.matches],
                "options": self.options.to_json_dict()}

    @classmethod
    def from_json_dict(cls, payload: object) -> "QueryResponse":
        """Parse a wire rendering; raises :class:`ServingError` when invalid."""
        if not isinstance(payload, dict) or "matches" not in payload \
                or "options" not in payload:
            raise ServingError(
                "a query response must be a JSON object with 'matches' "
                "and 'options' fields")
        matches = payload["matches"]
        if not isinstance(matches, list):
            raise ServingError("response 'matches' must be a JSON array")
        parsed = []
        for entry in matches:
            if not isinstance(entry, dict) or "id" not in entry \
                    or "similarity" not in entry:
                raise ServingError(
                    f"malformed match entry: {entry!r}")
            parsed.append(QueryMatch(_wire_scalar(entry["id"],
                                                  "match identifier"),
                                     float(entry["similarity"])))
        return cls(tuple(parsed), QueryOptions.from_json_dict(payload["options"]))


def finalize_matches(matches: Iterable[QueryMatch],
                     options: QueryOptions) -> tuple[QueryMatch, ...]:
    """Sort (and for top-k, truncate) merged matches per the options.

    The one merge rule every fan-out path shares: threshold answers are the
    sorted concatenation of the per-shard answers (shards are disjoint),
    top-k answers keep the global best ``k`` of the per-shard top-k union.
    """
    ordered = sort_matches(matches)
    if options.kind == TOPK_KIND:
        return tuple(ordered[:options.k])
    return tuple(ordered)


# -- wire codec of multisets ---------------------------------------------------


def _wire_scalar(value: object, what: str) -> object:
    """Validate that ``value`` survives JSON exactly; returns it unchanged."""
    if isinstance(value, _WIRE_SCALARS):
        return value
    raise ServingError(
        f"{what} {value!r} is not JSON-representable; the wire layer "
        "carries str/int/float/bool/None only")


def multiset_to_wire(multiset: Multiset) -> dict:
    """Render a multiset as a JSON-safe object.

    The element list preserves insertion order; multiplicities are the
    positive ints the :class:`~repro.core.multiset.Multiset` invariants
    guarantee, so the rendering round-trips exactly through
    :func:`multiset_from_wire`.
    """
    if not isinstance(multiset, Multiset):
        raise ServingError(
            f"expected a Multiset, got {type(multiset).__name__}")
    return {"id": _wire_scalar(multiset.id, "multiset identifier"),
            "elements": [[_wire_scalar(element, "multiset element"),
                          multiplicity]
                         for element, multiplicity in multiset.items()]}


def multiset_from_wire(payload: object) -> Multiset:
    """Parse a :func:`multiset_to_wire` rendering back into a multiset."""
    if not isinstance(payload, dict) or "id" not in payload \
            or "elements" not in payload:
        raise ServingError(
            "a wire multiset must be a JSON object with 'id' and "
            "'elements' fields")
    elements = payload["elements"]
    if not isinstance(elements, list):
        raise ServingError("wire multiset 'elements' must be a JSON array")
    pairs = []
    for entry in elements:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ServingError(
                f"each wire element must be an [element, multiplicity] "
                f"pair, got {entry!r}")
        element, multiplicity = entry
        pairs.append((_wire_scalar(element, "multiset element"),
                      multiplicity))
    # Multiset's own validation covers multiplicities and duplicates.
    return Multiset(_wire_scalar(payload["id"], "multiset identifier"),
                    pairs)


def requests_from_batch_payload(payload: object) -> list[QueryRequest]:
    """Parse the wire rendering of a batch: ``{"requests": [...]}``."""
    if not isinstance(payload, dict) or "requests" not in payload:
        raise ServingError(
            "a batch payload must be a JSON object with a 'requests' array")
    entries = payload["requests"]
    if not isinstance(entries, list):
        raise ServingError("batch 'requests' must be a JSON array")
    return [QueryRequest.from_json_dict(entry) for entry in entries]
