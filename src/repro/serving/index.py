"""The incremental partial-result index behind the serving subsystem.

:class:`SimilarityIndex` answers "what is similar to Q?" online, without
re-running a batch join.  It maintains exactly the two structures the
V-SMART-Join decomposition (paper section 3.2) shows are sufficient for any
supported Nominal Similarity Measure:

* the unilateral partials ``Uni(Mi)`` of every indexed multiset, accumulated
  per element exactly as the batch joining phase accumulates them
  (effective multiplicity → ``uni_from_multiplicity`` → ``uni_merge``);
* an element → postings inverted index mapping each alphabet element to the
  multisets containing it and their *effective* multiplicities — the online
  equivalent of the Similarity1 posting lists.

A query scans only the posting lists of its own elements, accumulating the
conjunctive partials ``Conj(Q, Mi)`` per candidate, then combines them with
the stored ``Uni`` tuples.  Two pruning levers keep tail latencies bounded:

* **stop-word pruning** (opt-in, approximate): posting lists longer than the
  configured frequency are skipped during candidate generation, mirroring
  the batch stop-word preprocessing step of section 4 — it trades recall on
  noise-dominated elements for latency, exactly as the paper describes;
* **upper-bound pruning** (always exact): candidates whose
  :meth:`~repro.similarity.base.NominalSimilarityMeasure.similarity_upper_bound`
  cannot reach the threshold are discarded the first time a posting list
  mentions them — skipping their remaining conjunctive accumulation — and
  top-k evaluation terminates early once no remaining candidate's bound can
  beat the current k-th best score (the classic threshold-algorithm stop).

Two representational optimisations keep the per-posting cost down without
changing any answer: the inverted index is keyed by *interned* dense
element ids (``intern=True``, see :mod:`repro.core.interning`), and for
measures that declare a scalar conjunctive kernel
(:mod:`repro.similarity.kernels`) the per-candidate ``Conj`` accumulates as
a single float instead of a partial tuple per shared element.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.core.exceptions import ServingError
from repro.core.interning import LocalInterner
from repro.core.multiset import Element, Multiset, MultisetId
from repro.serving.api import (
    THRESHOLD_KIND,
    QueryMatch,
    QueryRequest,
    QueryResponse,
    deprecated_query_form,
    sort_matches,
)
from repro.similarity.base import (
    NominalSimilarityMeasure,
    Partials,
    validate_threshold,
)
from repro.similarity.kernels import scalar_conj_functions
from repro.similarity.partials import fold_uni_multiplicities
from repro.similarity.registry import get_measure

__all__ = ["QueryMatch", "SimilarityIndex", "sort_matches"]

#: Postings-key sentinel for query elements the interner has never seen;
#: distinct from every real key (including a literal ``None`` element).
_NEVER_INDEXED = object()


class SimilarityIndex:
    """An incrementally maintained index answering similarity queries.

    Parameters
    ----------
    measure:
        Measure name or instance; must not require disjunctive partials
        (the same restriction as the batch drivers).
    stop_word_frequency:
        Optional ``q``: posting lists of more than ``q`` multisets are
        skipped at query time.  This is an *approximation* knob — with it
        unset (the default) every query is exact.
    intern:
        Key the inverted index by dense interned element ids instead of the
        raw elements (default on).  Long string elements — cookies in the
        paper's workload — then hash as single machine words, and query
        elements the index has never seen skip their posting lookup
        entirely.  Purely representational: answers are identical either
        way.
    """

    def __init__(self, measure: str | NominalSimilarityMeasure = "ruzicka",
                 stop_word_frequency: int | None = None,
                 intern: bool = True) -> None:
        self.measure = get_measure(measure)
        self.measure.check_supported()
        if stop_word_frequency is not None and stop_word_frequency < 1:
            raise ServingError(
                f"stop_word_frequency must be >= 1 when set, got {stop_word_frequency}")
        self.stop_word_frequency = stop_word_frequency
        self._interner: LocalInterner | None = LocalInterner() if intern else None
        self._scalar_conj = scalar_conj_functions(self.measure)
        self._multisets: dict[MultisetId, Multiset] = {}
        self._uni: dict[MultisetId, Partials] = {}
        #: element key (dense id when interning, raw element otherwise)
        #: -> {multiset id -> effective multiplicity}
        self._postings: dict[object, dict[MultisetId, float]] = {}
        self._version = 0
        self._counters: dict[str, int] = {}

    def _element_key(self, element: Element) -> object:
        """The postings key of ``element``.

        Returns a sentinel no postings entry can ever equal when the
        interner has never seen the element, so callers can probe
        ``self._postings`` unconditionally — a literal ``None`` *element*
        (legal: multiset elements are any hashable) stays distinguishable
        from "provably unindexed".
        """
        if self._interner is None:
            return element
        key = self._interner.get(element)
        return _NEVER_INDEXED if key is None else key

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._multisets)

    def __contains__(self, multiset_id: object) -> bool:
        return multiset_id in self._multisets

    def ids(self) -> Iterator[MultisetId]:
        """Iterate over the indexed multiset identifiers."""
        return iter(self._multisets)

    def get(self, multiset_id: MultisetId) -> Multiset | None:
        """Return the indexed multiset with this identifier, if any."""
        return self._multisets.get(multiset_id)

    def uni(self, multiset_id: MultisetId) -> Partials:
        """Return the maintained ``Uni`` partials of an indexed multiset."""
        try:
            return self._uni[multiset_id]
        except KeyError:
            raise ServingError(
                f"multiset {multiset_id!r} is not indexed") from None

    @property
    def version(self) -> int:
        """Monotonic write version; bumped by every add/remove."""
        return self._version

    @property
    def num_postings(self) -> int:
        """Total number of (element, multiset) posting entries."""
        return sum(len(postings) for postings in self._postings.values())

    def document_frequency(self, element: Element) -> int:
        """How many indexed multisets contain ``element`` (effectively).

        This is the length of the element's posting list — the quantity a
        query over that element pays — so incremental maintenance can price
        the scan a mutation would trigger before running it.
        """
        postings = self._postings.get(self._element_key(element))
        return len(postings) if postings else 0

    def posting_list_sizes(self) -> list[int]:
        """The length of every posting list (one entry per alphabet element).

        ``sum(df * (df - 1) // 2)`` over these is the unpruned candidate-pair
        volume of a from-scratch join over the indexed state — the same
        estimate the engine planner prices, computed here from the live
        postings instead of a corpus profile.
        """
        return [len(postings) for postings in self._postings.values()]

    def counters(self) -> dict[str, int]:
        """Query-execution counters (scanned postings, pruned candidates...)."""
        return dict(self._counters)

    def _increment(self, counter: str, amount: int = 1) -> None:
        self._counters[counter] = self._counters.get(counter, 0) + amount

    # -- writes ----------------------------------------------------------------

    def add(self, multiset: Multiset, replace: bool = False) -> None:
        """Index a multiset: accumulate its ``Uni`` and extend the postings.

        Adding an identifier that is already indexed raises unless
        ``replace=True``, in which case the stored entry is swapped
        atomically (remove + add under one logical write).
        """
        if multiset.id in self._multisets:
            if not replace:
                raise ServingError(
                    f"multiset {multiset.id!r} is already indexed; "
                    "pass replace=True to overwrite")
            self.remove(multiset.id)
        measure = self.measure
        interner = self._interner
        for element, multiplicity in multiset.items():
            effective = measure.effective_multiplicity(multiplicity)
            if effective <= 0:
                continue
            key = element if interner is None else interner.intern(element)
            self._postings.setdefault(key, {})[multiset.id] = effective
        self._multisets[multiset.id] = multiset
        # One scalar pass instead of a uni_from_multiplicity/uni_merge tuple
        # pair per element; identical tuples for every measure.
        self._uni[multiset.id] = fold_uni_multiplicities(
            measure, multiset.values())
        self._version += 1

    def remove(self, multiset_id: MultisetId) -> None:
        """Drop a multiset: retract its postings and forget its partials."""
        multiset = self._multisets.pop(multiset_id, None)
        if multiset is None:
            raise ServingError(f"multiset {multiset_id!r} is not indexed")
        del self._uni[multiset_id]
        for element in multiset:
            key = self._element_key(element)
            postings = self._postings.get(key)
            if postings is not None:
                postings.pop(multiset_id, None)
                if not postings:
                    del self._postings[key]
        self._version += 1

    def bulk_load(self, multisets: Iterable[Multiset],
                  replace: bool = False) -> int:
        """Add many multisets; returns how many were indexed."""
        count = 0
        for multiset in multisets:
            self.add(multiset, replace=replace)
            count += 1
        return count

    # -- persistence -----------------------------------------------------------

    def save(self, destination) -> None:
        """Persist this index into a SQLite database, exactly.

        ``destination`` is a database path or an open
        :class:`~repro.storage.StorageEngine`.  The indexed multisets, the
        maintained ``Uni`` partials, the inverted postings and (when
        interning) the dense-id assignment are all stored, so
        :meth:`load` restores the index without recomputing anything and
        its query answers are bit-identical to this one's.
        """
        from repro.storage import save_index

        save_index(destination, self)

    @classmethod
    def load(cls, source) -> "SimilarityIndex":
        """Load an index stored by :meth:`save` (path or open engine)."""
        from repro.storage import load_index

        return load_index(source)

    # -- queries ---------------------------------------------------------------

    def query(self, request: QueryRequest) -> QueryResponse:
        """Answer one unified-API query against the indexed state.

        The canonical entry point: a threshold request returns every
        indexed multiset at least ``threshold`` similar to the query, a
        top-k request the ``k`` most similar — both sorted by descending
        similarity, both exact whenever ``stop_word_frequency`` is unset.
        The legacy keyword forms (:meth:`query_threshold`,
        :meth:`query_topk`) delegate here and are deprecated.
        """
        options = request.options
        if options.kind == THRESHOLD_KIND:
            matches = self._threshold_matches(request.query, options.threshold)
        else:
            matches = self._topk_matches(request.query, options.k)
        return QueryResponse(tuple(matches), options)

    def query_threshold(self, query: Multiset,
                        threshold: float) -> list[QueryMatch]:
        """Deprecated alias of ``query(QueryRequest.threshold(...))``.

        .. deprecated:: 1.6
            Use :meth:`query` with the unified request dataclasses; this
            form returns the same matches as ``query(...).matches``.
        """
        deprecated_query_form(
            "SimilarityIndex.query_threshold(query, threshold)",
            "SimilarityIndex.query(QueryRequest.threshold(query, threshold))")
        return self._threshold_matches(query, threshold)

    def query_topk(self, query: Multiset, k: int) -> list[QueryMatch]:
        """Deprecated alias of ``query(QueryRequest.topk(...))``.

        .. deprecated:: 1.6
            Use :meth:`query` with the unified request dataclasses; this
            form returns the same matches as ``query(...).matches``.
        """
        deprecated_query_form(
            "SimilarityIndex.query_topk(query, k)",
            "SimilarityIndex.query(QueryRequest.topk(query, k))")
        return self._topk_matches(query, k)

    def _threshold_matches(self, query: Multiset,
                           threshold: float) -> list[QueryMatch]:
        """All indexed multisets with ``sim(query, Mi) >= threshold``.

        Results are sorted by descending similarity.  With
        ``stop_word_frequency`` unset the answer is exact — identical to
        what the batch join finds for the query against the indexed state.
        Candidates whose similarity upper bound cannot reach the threshold
        are dropped the first time a posting mentions them, skipping all
        their remaining conjunctive accumulation.
        """
        limit = validate_threshold(threshold)
        measure = self.measure
        uni_q, conj_by_id = self._gather_candidates(query, prune_below=limit)
        matches: list[QueryMatch] = []
        for multiset_id, conj in conj_by_id.items():
            similarity = measure.combine(uni_q, self._uni[multiset_id], conj)
            if similarity >= limit:
                matches.append(QueryMatch(multiset_id, similarity))
        self._increment("serving/threshold_queries")
        return sort_matches(matches)

    def _topk_matches(self, query: Multiset, k: int) -> list[QueryMatch]:
        """The ``k`` indexed multisets most similar to the query.

        Only multisets sharing at least one (non-pruned) element with the
        query are considered — for every supported measure, disjoint
        multisets have similarity zero.  Candidates are scored in
        descending upper-bound order so evaluation stops as soon as no
        remaining bound can beat the current k-th best score.
        """
        if k < 1:
            raise ServingError(f"top-k queries need k >= 1, got {k}")
        measure = self.measure
        uni_q, conj_by_id = self._gather_candidates(query)
        ranked = sorted(
            ((measure.similarity_upper_bound(uni_q, self._uni[multiset_id]),
              multiset_id) for multiset_id in conj_by_id),
            key=lambda pair: -pair[0])
        scored: list[QueryMatch] = []
        top_similarities: list[float] = []  # min-heap of the k best scores
        for bound, multiset_id in ranked:
            if len(top_similarities) >= k and bound < top_similarities[0]:
                self._increment("serving/topk_early_terminations")
                break
            similarity = measure.combine(uni_q, self._uni[multiset_id],
                                         conj_by_id[multiset_id])
            scored.append(QueryMatch(multiset_id, similarity))
            heapq.heappush(top_similarities, similarity)
            if len(top_similarities) > k:
                heapq.heappop(top_similarities)
        self._increment("serving/topk_queries")
        return sort_matches(scored)[:k]

    def neighbours(self, multiset_id: MultisetId,
                   threshold: float) -> list[QueryMatch]:
        """Threshold query for an indexed member, excluding the member itself.

        ``neighbours(Mi, t)`` over a fully loaded index enumerates exactly
        the partners the batch join pairs ``Mi`` with at threshold ``t``.
        """
        multiset = self._multisets.get(multiset_id)
        if multiset is None:
            raise ServingError(f"multiset {multiset_id!r} is not indexed")
        return [match for match in self._threshold_matches(multiset, threshold)
                if match.multiset_id != multiset_id]

    # -- internals -------------------------------------------------------------

    def _gather_candidates(
            self, query: Multiset,
            prune_below: float | None = None,
    ) -> tuple[Partials, dict[MultisetId, Partials]]:
        """Scan the query elements' postings, accumulating exact ``Conj``.

        Returns ``Uni(Q)`` (the measure's canonical whole-entity fold) and a
        map from candidate identifier to the accumulated conjunctive
        partials over the shared elements.  With ``prune_below`` set, a
        candidate whose similarity upper bound is below it is discarded the
        first time it appears, and contributes no further accumulation work
        on the remaining posting lists — this is where upper-bound pruning
        actually saves scanning, since ``Uni(Q)`` is complete before any
        posting is read.
        """
        measure = self.measure
        frequency_limit = self.stop_word_frequency
        uni_q = measure.unilateral(query)
        scalar = self._scalar_conj
        if scalar is not None:
            seed, accumulate = scalar
            totals: dict[MultisetId, float] = {}
            pruned: set[MultisetId] = set()
            uni_of = self._uni
            for element, multiplicity in query.items():
                effective_q = measure.effective_multiplicity(multiplicity)
                if effective_q <= 0:
                    continue
                postings = self._postings.get(self._element_key(element))
                if not postings:
                    continue
                if frequency_limit is not None and len(postings) > frequency_limit:
                    self._increment("serving/stop_words_skipped")
                    continue
                self._increment("serving/postings_scanned", len(postings))
                for multiset_id, effective_m in postings.items():
                    previous = totals.get(multiset_id)
                    if previous is None:
                        if multiset_id in pruned:
                            continue
                        if (prune_below is not None
                                and measure.similarity_upper_bound(
                                    uni_q, uni_of[multiset_id]) < prune_below):
                            pruned.add(multiset_id)
                            self._increment("serving/candidates_pruned")
                            continue
                        totals[multiset_id] = seed(effective_q, effective_m)
                    else:
                        totals[multiset_id] = accumulate(previous, effective_q,
                                                         effective_m)
            self._increment("serving/candidates_examined",
                            len(totals) + len(pruned))
            return uni_q, {multiset_id: (total,)
                           for multiset_id, total in totals.items()}
        conj_by_id: dict[MultisetId, Partials] = {}
        pruned = set()
        for element, multiplicity in query.items():
            effective_q = measure.effective_multiplicity(multiplicity)
            if effective_q <= 0:
                continue
            postings = self._postings.get(self._element_key(element))
            if not postings:
                continue
            if frequency_limit is not None and len(postings) > frequency_limit:
                self._increment("serving/stop_words_skipped")
                continue
            self._increment("serving/postings_scanned", len(postings))
            for multiset_id, effective_m in postings.items():
                previous = conj_by_id.get(multiset_id)
                if previous is None:
                    if multiset_id in pruned:
                        continue
                    if (prune_below is not None
                            and measure.similarity_upper_bound(
                                uni_q, self._uni[multiset_id]) < prune_below):
                        pruned.add(multiset_id)
                        self._increment("serving/candidates_pruned")
                        continue
                    conj_by_id[multiset_id] = measure.conj_from_pair(
                        effective_q, effective_m)
                else:
                    conj_by_id[multiset_id] = measure.conj_merge(
                        previous,
                        measure.conj_from_pair(effective_q, effective_m))
        self._increment("serving/candidates_examined",
                        len(conj_by_id) + len(pruned))
        return uni_q, conj_by_id

    def __repr__(self) -> str:
        return (f"SimilarityIndex(measure={self.measure.name!r}, "
                f"multisets={len(self._multisets)}, "
                f"postings={self.num_postings})")
