"""Discover load-balancing proxy IPs from an IP/cookie workload.

This is the paper's motivating application (sections 1 and 7.4): every IP is
a multiset of the cookies observed with it, similar IPs are connected into a
similarity graph, and the connected clusters are candidate ISP load
balancers.  The example:

1. generates a synthetic workload with planted proxy groups,
2. runs the similarity join at several thresholds through one engine
   session (the cluster and backend are owned once, not per call),
3. filters out IPs that observed fewer than 50 cookies (the paper's
   false-positive mitigation),
4. reports coverage and false positives against the planted ground truth.

Run with::

    python examples/ip_proxy_discovery.py
"""

from __future__ import annotations

from repro import JoinSpec, SimilarityEngine
from repro.analysis.reporting import format_table
from repro.communities.proxies import (
    discovered_proxy_groups,
    evaluate_proxy_discovery,
    filter_small_multisets,
)
from repro.datasets.ip_cookie import IPCookieConfig, generate_ip_cookie_dataset
from repro.mapreduce.cluster import laptop_cluster

#: The paper filters out IPs that observed fewer than 50 cookies; the
#: synthetic workload is smaller, so the filter is scaled down too.
MINIMUM_COOKIES_PER_IP = 15


def main() -> None:
    config = IPCookieConfig(num_ips=150, num_cookies=800,
                            max_cookies_per_ip=120, min_cookies_per_ip=3,
                            num_proxy_groups=6, ips_per_proxy_group=5,
                            cookies_per_proxy_pool=30, proxy_cookie_affinity=0.9,
                            seed=42)
    dataset = generate_ip_cookie_dataset(config)
    engine = SimilarityEngine(cluster=laptop_cluster(num_machines=8))
    print(f"Generated {len(dataset.multisets)} IPs, "
          f"{len(dataset.proxy_groups)} planted load-balancer groups.")

    kept = filter_small_multisets(dataset.multisets, MINIMUM_COOKIES_PER_IP)
    kept_ids = {multiset.id for multiset in kept}

    rows = []
    for threshold in (0.1, 0.3, 0.5, 0.7):
        spec = JoinSpec(algorithm="online_aggregation", measure="ruzicka",
                        threshold=threshold, sharding_threshold=64)
        unfiltered = engine.run(spec, dataset.multisets)
        raw_eval = evaluate_proxy_discovery(unfiltered.pairs,
                                            dataset.proxy_groups, threshold)

        filtered = engine.run(spec, kept)
        filtered_eval = evaluate_proxy_discovery(filtered.pairs, dataset.proxy_groups,
                                                 threshold, restrict_to_ids=kept_ids)
        rows.append([threshold,
                     raw_eval.discovered_pairs, f"{raw_eval.coverage:.2f}",
                     f"{raw_eval.false_positive_rate:.2f}",
                     filtered_eval.discovered_pairs, f"{filtered_eval.coverage:.2f}",
                     f"{filtered_eval.false_positive_rate:.2f}"])

    print()
    print(format_table(
        ["t", "pairs", "coverage", "FP rate",
         "pairs (>=50c filter)", "coverage (filter)", "FP rate (filter)"],
        rows,
        title="Proxy discovery quality vs similarity threshold (paper section 7.4)"))

    # Show the discovered communities at the paper's low-threshold setting.
    result = engine.run(JoinSpec(threshold=0.3, sharding_threshold=64), kept)
    groups = discovered_proxy_groups(result.pairs)
    print()
    print(f"Discovered {len(groups)} candidate load balancers at t=0.3 "
          f"(planner ran {result.algorithm!r}); largest groups:")
    for group in groups[:5]:
        members = ", ".join(sorted(group)[:6])
        suffix = ", ..." if len(group) > 6 else ""
        print(f"  [{len(group):>2} IPs] {members}{suffix}")


if __name__ == "__main__":
    main()
