"""Out-of-core and SQL-pushdown joins with the ``repro.exec`` backends.

Run with::

    python examples/out_of_core_join.py

The example generates a synthetic IP–cookie corpus, then runs the same
join three ways: on the default in-memory serial backend, on the
:class:`~repro.exec.DiskShuffleBackend` with a spill budget deliberately
far smaller than the shuffle (so the join genuinely goes out of core and
reports its spill telemetry), and on the :class:`~repro.exec.SqlBackend`
with the reduce phases pushed down into SQLite.  All three produce
bit-identical pairs — the point of the exercise — and the cost model's
disk-bandwidth term shows up in the plan when spilling is charged.
"""

from __future__ import annotations

from repro.datasets import IPCookieConfig, generate_ip_cookie_dataset
from repro.engine import JoinSpec, SimilarityEngine
from repro.mapreduce import get_backend
from repro.mapreduce.costmodel import CostParameters


def main() -> None:
    dataset = generate_ip_cookie_dataset(IPCookieConfig(
        num_ips=120, num_cookies=600, num_proxy_groups=4,
        ips_per_proxy_group=4, cookies_per_proxy_pool=30))
    corpus = dataset.multisets
    print(f"Corpus: {len(corpus)} IPs, "
          f"{sum(len(m) for m in corpus)} (ip, cookie) observations")
    print()

    spec = JoinSpec(measure="ruzicka", threshold=0.4,
                    algorithm="online_aggregation")
    engine = SimilarityEngine(corpus)

    # 1. The reference: everything in memory, one process.
    baseline = engine.run(spec)
    print(f"serial   backend: {len(baseline.pairs)} pairs")

    # 2. Out of core: a 64 KiB spill budget forces the shuffle to disk.
    #    (Production would use the default 32 MiB budget.)
    budget = 64 * 1024
    disk = get_backend("disk", memory_budget_bytes=budget, merge_fan_in=4)
    disk_result = SimilarityEngine(corpus).run(
        JoinSpec(measure="ruzicka", threshold=0.4,
                 algorithm="online_aggregation", backend=disk))
    counters = disk_result.counters()
    shuffled = sum(stats.shuffle_bytes
                   for stats in disk_result.pipeline.job_stats)
    print(f"disk     backend: {len(disk_result.pairs)} pairs — shuffled "
          f"{shuffled:,} bytes through a {budget:,}-byte budget")
    print(f"  shuffle/runs_written     = {counters['shuffle/runs_written']}")
    print(f"  shuffle/bytes_spilled    = {counters['shuffle/bytes_spilled']:,}")
    print(f"  shuffle/merge_passes     = {counters['shuffle/merge_passes']}")
    print(f"  shuffle/spilled_records  = {counters['shuffle/spilled_records']:,}")

    # 3. SQL pushdown: the reduce phases run as group-by queries in SQLite.
    sql_result = SimilarityEngine(corpus).run(
        JoinSpec(measure="ruzicka", threshold=0.4,
                 algorithm="online_aggregation", backend="sql"))
    sql_counters = sql_result.counters()
    print(f"sql      backend: {len(sql_result.pairs)} pairs — "
          f"{sql_counters.get('sql/pushdown_jobs', 0)} jobs pushed down, "
          f"{sql_counters.get('sql/fallback_jobs', 0)} exact fallbacks")
    print()

    assert disk_result.pairs == baseline.pairs
    assert sql_result.pairs == baseline.pairs
    print("All three backends returned bit-identical pairs.")
    print()

    # Charging spilled bytes in the cost model makes the planner's EXPLAIN
    # grow a `disk` column, so algorithm="auto" stays honest out of core.
    plan = SimilarityEngine(
        corpus,
        cost_parameters=CostParameters(disk_bandwidth=200e6),
    ).plan(JoinSpec(measure="ruzicka", threshold=0.4, algorithm="auto"))
    print(plan.explain())


if __name__ == "__main__":
    main()
