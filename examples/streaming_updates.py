"""Keep a similarity join correct while the corpus churns — no re-joins.

Run with::

    python examples/streaming_updates.py

The example materializes the similar-pair set of a join as an incremental
:class:`~repro.streaming.view.JoinView`, attaches a sharded serving fleet
so deltas stream straight into its warmed caches, and then applies a
Zipf-skewed mutation stream (updates, inserts, deletes).  Each batch emits
exact ``pair_added`` / ``pair_removed`` / ``score_changed`` deltas; at the
end the view is checked pair-for-pair against a from-scratch re-join of
the mutated corpus.
"""

from __future__ import annotations

from repro import JoinSpec, SimilarityEngine, attach_serving
from repro.datasets.ip_cookie import generate_ip_cookie_dataset, small_dataset_config
from repro.datasets.workload import MutationStreamConfig, generate_mutation_stream
from repro.mapreduce.cluster import laptop_cluster
from repro.serving.api import QueryRequest
from repro.serving.service import ShardedSimilarityService

THRESHOLD = 0.5
SPEC = JoinSpec(measure="ruzicka", threshold=THRESHOLD, algorithm="exact")


def main() -> None:
    dataset = generate_ip_cookie_dataset(small_dataset_config())
    multisets = dataset.multisets
    print(f"Generated {len(multisets)} IPs.")

    with SimilarityEngine(cluster=laptop_cluster()) as engine:
        # One batch join, materialized as a maintained view.
        view = engine.materialize(SPEC, multisets)
        print(f"Materialized view: {view.num_pairs} similar pairs at "
              f"threshold {THRESHOLD}.")

        # The serving fleet follows the view: every batch updates the
        # shards and re-warms member caches from the view's pair map —
        # bootstrap_from_join never runs again.
        service = ShardedSimilarityService("ruzicka", num_shards=4,
                                           cache_capacity=2 * len(multisets))
        attach_serving(view, service)
        print(f"Serving fleet attached: {service!r}")

        # Live churn: hot IPs accumulate new cookies, fresh IPs appear,
        # dead ones retire.
        stream = generate_mutation_stream(
            multisets, MutationStreamConfig(num_batches=5, batch_size=12,
                                            seed=2012))
        print("\nApplying the mutation stream:")
        for number, batch in enumerate(stream, start=1):
            plan = view.decide(batch)
            deltas = view.apply(batch)
            kinds = {}
            for delta in deltas:
                kinds[delta.kind] = kinds.get(delta.kind, 0) + 1
            summary = ", ".join(f"{count} {kind}"
                                for kind, count in sorted(kinds.items())) \
                or "no pair movement"
            print(f"  batch {number}: {len(batch)} changes via "
                  f"{plan.strategy} -> {summary}")

        counters = view.counters()
        print(f"\nView after churn: {view.num_members} members, "
              f"{view.num_pairs} pairs, version {view.version} "
              f"({counters.get('streaming/batches_incremental', 0)} "
              f"incremental batches, "
              f"{counters.get('streaming/batches_rejoin', 0)} re-joins).")

        # The fleet's caches answer member queries without a posting scan.
        member = view.members()[0]
        matches = service.query(QueryRequest.threshold(member, THRESHOLD))
        print(f"Fleet serves {member.id}: {len(matches)} matches, "
              f"{service.stats()['cache/hits']:.0f} cache hits so far.")

        # The acceptance check: the maintained view equals a from-scratch
        # re-join of the mutated corpus.
        rejoin = engine.run(SPEC, view.members())
        assert {pair.pair: pair.similarity for pair in rejoin} == view.pairs()
        print(f"\nParity check passed: view == re-join "
              f"({len(rejoin.pairs)} pairs), with zero batch joins during "
              "the stream.")


if __name__ == "__main__":
    main()
