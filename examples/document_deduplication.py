"""Near-duplicate document detection with shingles (Broder-style workload).

The related work the paper builds on (Broder et al.; Xiao et al.) motivates
all-pair similarity joins with near-duplicate detection: documents are
represented as multisets of word shingles and similar documents are
near-duplicates.  The example compares three ways of solving the same task:

* the exact V-SMART-Join MapReduce pipeline (Jaccard on shingle sets),
* the sequential PPJoin baseline with prefix filtering,
* the approximate MinHash/LSH baseline.

Run with::

    python examples/document_deduplication.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.baselines.minhash import LSHParameters, MinHashLSHJoin
from repro.baselines.ppjoin import PPJoin
from repro.communities.clustering import clusters_from_pairs
from repro.datasets.documents import DocumentCorpusConfig, generate_document_corpus
from repro.mapreduce.cluster import laptop_cluster
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig

THRESHOLD = 0.5


def pair_set(pairs) -> set:
    return {pair.pair for pair in pairs}


def main() -> None:
    corpus = generate_document_corpus(DocumentCorpusConfig(
        num_base_documents=25, words_per_document=150, duplicates_per_document=2,
        mutation_rate=0.07, shingle_length=3, seed=13))
    multisets = corpus.multisets
    truth = set()
    for cluster in corpus.duplicate_clusters:
        members = sorted(cluster)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                truth.add((members[i], members[j]))
    print(f"Corpus: {len(multisets)} documents, "
          f"{len(corpus.duplicate_clusters)} planted duplicate clusters, "
          f"{len(truth)} duplicate pairs.")

    # Exact distributed join.
    join = VSmartJoin(VSmartJoinConfig(measure="jaccard", threshold=THRESHOLD),
                      cluster=laptop_cluster(num_machines=8))
    vsmart_pairs = pair_set(join.run(multisets).pairs)

    # Sequential PPJoin.
    ppjoin = PPJoin("jaccard", THRESHOLD)
    ppjoin_pairs = pair_set(ppjoin.run(multisets))

    # Approximate MinHash/LSH.
    lsh = MinHashLSHJoin("jaccard", THRESHOLD, LSHParameters(num_bands=16, rows_per_band=4),
                         verify_exact=True)
    lsh_pairs = pair_set(lsh.run(multisets))

    rows = []
    for name, pairs in (("V-SMART-Join (exact, MapReduce)", vsmart_pairs),
                        ("PPJoin (exact, sequential)", ppjoin_pairs),
                        ("MinHash/LSH (approximate)", lsh_pairs)):
        recovered = len(pairs & truth)
        extra = len(pairs - truth)
        recall = recovered / len(truth) if truth else 1.0
        rows.append([name, len(pairs), recovered, extra, f"{recall:.2f}"])
    print()
    print(format_table(
        ["algorithm", "pairs", "true duplicates", "other pairs", "recall"],
        rows, title=f"Near-duplicate detection at Jaccard >= {THRESHOLD}"))

    clusters = clusters_from_pairs(join.run(multisets).pairs)
    print()
    print(f"V-SMART-Join groups the corpus into {len(clusters)} duplicate clusters; "
          f"the largest has {max((len(c) for c in clusters), default=0)} documents.")


if __name__ == "__main__":
    main()
