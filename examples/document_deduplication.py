"""Near-duplicate document detection with shingles (Broder-style workload).

The related work the paper builds on (Broder et al.; Xiao et al.) motivates
all-pair similarity joins with near-duplicate detection: documents are
represented as multisets of word shingles and similar documents are
near-duplicates.  The example solves the same task three ways *through the
same front door* — one :class:`~repro.engine.spec.JoinSpec` per algorithm
name, one :class:`~repro.engine.result.JoinResult` shape back:

* the exact V-SMART-Join MapReduce pipeline (Jaccard on shingle sets),
* the sequential PPJoin baseline with prefix filtering,
* the approximate MinHash/LSH baseline.

Run with::

    python examples/document_deduplication.py
"""

from __future__ import annotations

from repro import JoinSpec, SimilarityEngine
from repro.analysis.reporting import format_table
from repro.baselines.minhash import LSHParameters
from repro.communities.clustering import clusters_from_pairs
from repro.datasets.documents import DocumentCorpusConfig, generate_document_corpus
from repro.mapreduce.cluster import laptop_cluster

THRESHOLD = 0.5

CONTENDERS = (
    ("V-SMART-Join (exact, MapReduce)", "online_aggregation"),
    ("PPJoin (exact, sequential)", "ppjoin"),
    ("MinHash/LSH (approximate)", "minhash"),
)


def main() -> None:
    corpus = generate_document_corpus(DocumentCorpusConfig(
        num_base_documents=25, words_per_document=150, duplicates_per_document=2,
        mutation_rate=0.07, shingle_length=3, seed=13))
    multisets = corpus.multisets
    truth = set()
    for cluster in corpus.duplicate_clusters:
        members = sorted(cluster)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                truth.add((members[i], members[j]))
    print(f"Corpus: {len(multisets)} documents, "
          f"{len(corpus.duplicate_clusters)} planted duplicate clusters, "
          f"{len(truth)} duplicate pairs.")

    rows = []
    results = {}
    with SimilarityEngine(cluster=laptop_cluster(num_machines=8)) as engine:
        for label, algorithm in CONTENDERS:
            # 16 bands x 4 rows is this corpus's tuned banding; the engine
            # verifies candidates exactly, so only banding recall is lossy.
            spec = JoinSpec(measure="jaccard", threshold=THRESHOLD,
                            algorithm=algorithm,
                            minhash_parameters=LSHParameters(
                                num_bands=16, rows_per_band=4))
            result = engine.run(spec, multisets)
            results[algorithm] = result
            pairs = {pair.pair for pair in result}
            recovered = len(pairs & truth)
            extra = len(pairs - truth)
            recall = recovered / len(truth) if truth else 1.0
            rows.append([label, len(pairs), recovered, extra, f"{recall:.2f}"])
    print()
    print(format_table(
        ["algorithm", "pairs", "true duplicates", "other pairs", "recall"],
        rows, title=f"Near-duplicate detection at Jaccard >= {THRESHOLD}"))

    clusters = clusters_from_pairs(results["online_aggregation"].pairs)
    print()
    print(f"V-SMART-Join groups the corpus into {len(clusters)} duplicate clusters; "
          f"the largest has {max((len(c) for c in clusters), default=0)} documents.")


if __name__ == "__main__":
    main()
