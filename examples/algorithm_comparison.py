"""Compare the joining algorithms — and check the planner against reality.

A miniature version of the paper's Figure 4 / Figure 5 experiments: run
Online-Aggregation, Lookup, Sharding and the VCL baseline on the scaled-down
"small" dataset, sweep the similarity threshold and the number of machines,
and print the simulated run times the cost model produces.  The final
section asks the cost-model planner (``JoinSpec(algorithm="auto")``) which
algorithm it *predicts* will win and compares that against the measured
sweep — the planner answering the paper's central practical question
without running all four pipelines.

Run with::

    python examples/algorithm_comparison.py
"""

from __future__ import annotations

from repro import JoinSpec, SimilarityEngine
from repro.analysis.calibration import paper_scale_cluster, paper_scale_cost_parameters
from repro.analysis.experiments import machine_sweep, threshold_sweep
from repro.analysis.reporting import format_sweep_table
from repro.datasets.ip_cookie import generate_preset

ALGORITHMS = ("online_aggregation", "lookup", "sharding", "vcl")


def main() -> None:
    dataset = generate_preset("small")
    print(f"Small synthetic dataset: {len(dataset.multisets)} IPs "
          f"(scaled-down analogue of the paper's 82M-IP dataset).")
    cost = paper_scale_cost_parameters()

    thresholds = (0.1, 0.5, 0.9)
    sweep = threshold_sweep(ALGORITHMS, dataset.multisets, thresholds,
                            cluster=paper_scale_cluster(500),
                            sharding_threshold=1000, cost_parameters=cost,
                            keep_pairs=False)
    print()
    print(format_sweep_table(sweep, ALGORITHMS, "threshold",
                             title="Simulated run time vs similarity threshold "
                                   "(500 machines; compare paper Fig. 4)"))

    machines = (100, 500, 900)
    machine_results = machine_sweep(ALGORITHMS, dataset.multisets, machines,
                                    base_cluster=paper_scale_cluster(),
                                    threshold=0.5, sharding_threshold=1000,
                                    cost_parameters=cost, keep_pairs=False)
    print()
    print(format_sweep_table(machine_results, ALGORITHMS, "machines",
                             title="Simulated run time vs number of machines "
                                   "(t = 0.5; compare paper Fig. 5)"))

    # The planner's answer to the same question — without running anything.
    engine = SimilarityEngine(cluster=paper_scale_cluster(500),
                              cost_parameters=cost)
    plan = engine.plan(JoinSpec(threshold=0.5, sharding_threshold=1000),
                       dataset.multisets)
    print()
    print(plan.explain())

    measured = {name: outcome.simulated_seconds
                for name, outcome in sweep[0.5].items() if outcome.finished}
    fastest = min(measured, key=measured.get)
    agree = "matches" if plan.algorithm == fastest else "disagrees with"
    print()
    print(f"Planner choice {plan.algorithm!r} {agree} the measured winner "
          f"{fastest!r} at t=0.5.")
    print("Simulated seconds come from the deterministic cost model; only the")
    print("relative comparisons are meaningful (see EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
