"""Serve online similarity queries over the synthetic IP/cookie workload.

Run with::

    python examples/similarity_serving.py

The example runs the batch join once through the unified engine (letting
the planner pick the algorithm), hands the result off to a sharded serving
fleet with ``result.to_service()``, and then answers live threshold / top-k
queries — including for an IP that only appears after the batch ran, the
situation the batch pipeline alone cannot handle.
"""

from __future__ import annotations

from repro import JoinSpec, SimilarityEngine
from repro.core.multiset import Multiset
from repro.serving.api import QueryRequest
from repro.datasets.ip_cookie import small_dataset_config, generate_ip_cookie_dataset
from repro.mapreduce.cluster import laptop_cluster

THRESHOLD = 0.5


def main() -> None:
    dataset = generate_ip_cookie_dataset(small_dataset_config())
    multisets = dataset.multisets
    print(f"Generated {len(multisets)} IPs "
          f"({len(dataset.proxy_groups)} planted proxy groups).")

    # Nightly batch: the full all-pair join, algorithm chosen by the planner.
    with SimilarityEngine(cluster=laptop_cluster()) as engine:
        join = engine.run(JoinSpec(threshold=THRESHOLD), multisets)
    print(f"Batch join ran {join.algorithm!r} and found {len(join.pairs)} "
          f"similar pairs ({join.simulated_seconds:,.0f} simulated seconds).")

    # Online serving: warm-started from the batch result, sharded 4 ways.
    service = join.to_service(num_shards=4)
    print(f"Serving fleet ready: {service!r}")

    # Member queries hit the warmed caches.
    proxy_ip = join.pairs[0].first
    matches = service.neighbours(proxy_ip, THRESHOLD)
    print(f"\nIPs similar to {proxy_ip} (threshold {THRESHOLD}):")
    for match in matches[:5]:
        print(f"  {match.multiset_id:>14}  similarity={match.similarity:.3f}")

    # A brand-new IP (never seen by the batch join) is queried and indexed
    # immediately — no re-join required.
    template = service.node_for(proxy_ip).index.get(proxy_ip)
    newcomer = Multiset("10.99.99.99", dict(list(template.items())[:40]))
    top = service.query(QueryRequest.topk(newcomer, 3)).matches
    print(f"\nTop-3 matches for the newly observed {newcomer.id}:")
    for match in top:
        print(f"  {match.multiset_id:>14}  similarity={match.similarity:.3f}")
    service.add(newcomer)
    print(f"{newcomer.id} is now indexed and serveable "
          f"({len(service)} multisets).")

    stats = service.stats()
    print(f"\nFleet stats: {stats.get('cache/hits', 0):.0f} cache hits, "
          f"{stats.get('serving/postings_scanned', 0):.0f} postings scanned, "
          f"{stats.get('serving/candidates_pruned', 0):.0f} candidates "
          f"pruned by upper bounds.")


if __name__ == "__main__":
    main()
