"""Quickstart: find all pairs of similar multisets with V-SMART-Join.

Run with::

    python examples/quickstart.py

The example builds a handful of IP-like entities (multisets of cookies),
runs the V-SMART-Join pipeline on the simulated MapReduce cluster, and
cross-checks the result against the exact in-memory join.
"""

from __future__ import annotations

from repro import Multiset, all_pairs_exact, compute_similarity, vsmart_join
from repro.mapreduce import laptop_cluster
from repro.similarity import available_measures


def build_example_entities() -> list[Multiset]:
    """A tiny workload: two proxy-like IPs, one echo of them, two loners."""
    return [
        Multiset("10.0.0.1", {"cookie:alice": 5, "cookie:bob": 3, "cookie:carol": 2}),
        Multiset("10.0.0.2", {"cookie:alice": 4, "cookie:bob": 4, "cookie:carol": 1}),
        Multiset("10.0.0.3", {"cookie:alice": 1, "cookie:dave": 7}),
        Multiset("192.168.1.9", {"cookie:erin": 2, "cookie:frank": 2}),
        Multiset("192.168.1.10", {"cookie:erin": 2, "cookie:frank": 1, "cookie:grace": 1}),
    ]


def main() -> None:
    entities = build_example_entities()

    print("Available similarity measures:", ", ".join(available_measures()))
    print()

    # The one-call API: all pairs with Ruzicka similarity >= 0.5, computed by
    # the Online-Aggregation + similarity-phase MapReduce pipeline.
    pairs = vsmart_join(entities, measure="ruzicka", threshold=0.5,
                        algorithm="online_aggregation", cluster=laptop_cluster())
    print("Similar pairs found by V-SMART-Join (Ruzicka >= 0.5):")
    for pair in pairs:
        print(f"  {pair.first:>14}  ~  {pair.second:<14}  similarity={pair.similarity:.3f}")
    print()

    # Cross-check against the exact in-memory join (the ground truth used
    # throughout the test suite).
    exact = all_pairs_exact(entities, "ruzicka", 0.5)
    assert {p.pair for p in exact} == {p.pair for p in pairs}
    print("Exact in-memory join agrees with the MapReduce pipeline.")
    print()

    # Individual similarities are one call away as well.
    first, second = entities[0], entities[1]
    for measure in ("ruzicka", "jaccard", "dice", "cosine", "vector_cosine"):
        value = compute_similarity(measure, first, second)
        print(f"  {measure:>14}({first.id}, {second.id}) = {value:.3f}")


if __name__ == "__main__":
    main()
