"""Quickstart: find all pairs of similar multisets with the unified engine.

Run with::

    python examples/quickstart.py

The example builds a handful of IP-like entities (multisets of cookies),
declares the join as a :class:`~repro.engine.spec.JoinSpec`, lets the
cost-model planner pick the algorithm (``algorithm="auto"``), inspects the
plan the way one would inspect a query plan, and cross-checks the result
against the exact in-memory join.
"""

from __future__ import annotations

from repro import (
    JoinSpec,
    Multiset,
    SimilarityEngine,
    all_pairs_exact,
    available_algorithms,
    compute_similarity,
    list_measures,
)


def build_example_entities() -> list[Multiset]:
    """A tiny workload: two proxy-like IPs, one echo of them, two loners."""
    return [
        Multiset("10.0.0.1", {"cookie:alice": 5, "cookie:bob": 3, "cookie:carol": 2}),
        Multiset("10.0.0.2", {"cookie:alice": 4, "cookie:bob": 4, "cookie:carol": 1}),
        Multiset("10.0.0.3", {"cookie:alice": 1, "cookie:dave": 7}),
        Multiset("192.168.1.9", {"cookie:erin": 2, "cookie:frank": 2}),
        Multiset("192.168.1.10", {"cookie:erin": 2, "cookie:frank": 1, "cookie:grace": 1}),
    ]


def main() -> None:
    entities = build_example_entities()

    # Everything a JoinSpec accepts is discoverable from the package root.
    print("Available measures:  ", ", ".join(list_measures()))
    print("Available algorithms:", ", ".join(available_algorithms()))
    print()

    spec = JoinSpec(measure="ruzicka", threshold=0.5, algorithm="auto")
    with SimilarityEngine() as engine:
        # Plan first: which algorithm would the cost model pick, and why?
        plan = engine.plan(spec, entities)
        print(plan.explain())
        print()

        # Run it — passing the plan back avoids re-profiling the corpus.
        # The result type is the same whichever algorithm executed.
        result = engine.run(spec, entities, plan=plan)

    print(f"Similar pairs found by {result.algorithm!r} (Ruzicka >= 0.5):")
    for pair in result:
        print(f"  {pair.first:>14}  ~  {pair.second:<14}  similarity={pair.similarity:.3f}")
    print()

    # Cross-check against the exact in-memory join (the ground truth used
    # throughout the test suite).
    exact = all_pairs_exact(entities, "ruzicka", 0.5)
    assert {p.pair for p in exact} == {p.pair for p in result}
    print("Exact in-memory join agrees with the planned MapReduce pipeline.")
    print(f"(simulated cost: predicted {result.predicted_seconds:,.0f} s, "
          f"measured {result.simulated_seconds:,.0f} s)")
    print()

    # Individual similarities are one call away as well.
    first, second = entities[0], entities[1]
    for measure in ("ruzicka", "jaccard", "dice", "cosine", "vector_cosine"):
        value = compute_similarity(measure, first, second)
        print(f"  {measure:>14}({first.id}, {second.id}) = {value:.3f}")


if __name__ == "__main__":
    main()
