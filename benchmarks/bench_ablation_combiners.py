"""Ablation: dedicated combiners on vs off.

The paper (section 2, footnote 2, and section 5) chooses dedicated combiners
for every aggregation "to conserve the network bandwidth" and to reduce the
load of the slowest reducers.  This ablation runs the Online-Aggregation
pipeline with and without combiners and reports the shuffle volume and the
simulated run time; the results must be identical either way.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.mapreduce.costmodel import CostParameters
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig


def test_ablation_combiners(benchmark, small_dataset, cluster_500, cost_parameters,
                            bench_record):
    multisets = small_dataset.multisets

    def run():
        outcomes = {}
        for use_combiners in (True, False):
            config = VSmartJoinConfig(algorithm="online_aggregation", threshold=0.5,
                                      use_combiners=use_combiners)
            join = VSmartJoin(config, cluster=cluster_500,
                              cost_parameters=cost_parameters)
            result = join.run(multisets)
            outcomes[use_combiners] = result
        return outcomes

    outcomes = run_once(benchmark, run)
    bench_record["variants"] = {
        "combiners_on" if use_combiners else "combiners_off": {
            "shuffle_bytes": sum(s.shuffle_bytes for s in result.pipeline.job_stats),
            "simulated_seconds": result.simulated_seconds,
            "num_pairs": len(result.pairs),
        }
        for use_combiners, result in outcomes.items()}
    rows = []
    for use_combiners, result in outcomes.items():
        shuffle = sum(stats.shuffle_bytes for stats in result.pipeline.job_stats)
        rows.append(["on" if use_combiners else "off",
                     f"{shuffle:,}", f"{result.simulated_seconds:,.0f}s",
                     len(result.pairs)])
    print()
    print(format_table(["dedicated combiners", "total shuffle bytes",
                        "simulated run time", "pairs"], rows,
                       title="Ablation: dedicated combiners (Online-Aggregation, small dataset)"))

    with_combiners, without_combiners = outcomes[True], outcomes[False]
    assert {p.pair for p in with_combiners.pairs} == {p.pair for p in without_combiners.pairs}
    assert (sum(s.shuffle_bytes for s in with_combiners.pipeline.job_stats)
            < sum(s.shuffle_bytes for s in without_combiners.pipeline.job_stats))
    assert isinstance(cost_parameters, CostParameters)
