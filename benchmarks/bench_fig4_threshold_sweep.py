"""Figure 4: run time vs similarity threshold on the small dataset.

The paper runs every algorithm on 500 machines with the Ruzicka measure and
sweeps t from 0.1 to 0.9.  Expected shape (paper section 7.1): all
algorithms produce the same number of pairs at every threshold; the three
V-SMART-Join algorithms are nearly insensitive to t and ordered
Online-Aggregation < Lookup < Sharding with slight differences; VCL is
several times slower everywhere, strongly t-dependent, and worst at t=0.1.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_SHARDING_C, THRESHOLD_GRID, run_once
from repro.analysis.experiments import agreement_check, threshold_sweep
from repro.analysis.reporting import format_sweep_table, speedup

ALGORITHMS = ("online_aggregation", "lookup", "sharding", "vcl")


def test_fig4_threshold_sweep(benchmark, small_dataset, cluster_500, cost_parameters,
                              bench_record):
    def run():
        # intern=False / prune_candidates=False: the figure reproduces the
        # paper's cross-algorithm cost orderings, which are calibrated to
        # raw-identifier records and the unpruned candidate stream.
        return threshold_sweep(ALGORITHMS, small_dataset.multisets, THRESHOLD_GRID,
                               cluster=cluster_500,
                               sharding_threshold=DEFAULT_SHARDING_C,
                               cost_parameters=cost_parameters, intern=False,
                               prune_candidates=False, keep_pairs=False)

    sweep = run_once(benchmark, run)
    bench_record["simulated_seconds"] = {
        threshold: {name: outcome.simulated_seconds
                    for name, outcome in outcomes.items()}
        for threshold, outcomes in sweep.items()}
    bench_record["num_pairs"] = {
        threshold: outcomes["online_aggregation"].num_pairs
        for threshold, outcomes in sweep.items()}
    print()
    print(format_sweep_table(sweep, ALGORITHMS, "threshold",
                             title="Fig. 4: simulated run time vs similarity threshold "
                                   "(small dataset, 500 machines)"))
    pair_rows = [[threshold, outcomes["online_aggregation"].num_pairs]
                 for threshold, outcomes in sorted(sweep.items())]
    print()
    print("Similar pairs found per threshold (identical for every algorithm):")
    for threshold, pairs in pair_rows:
        print(f"  t={threshold}: {pairs}")

    for threshold, outcomes in sweep.items():
        # "all the algorithms produced the same number of similar pairs"
        assert agreement_check(outcomes.values()), threshold
        oa = outcomes["online_aggregation"]
        vcl = outcomes["vcl"]
        assert oa.finished and vcl.finished
        # VCL is never close to the V-SMART-Join algorithms.
        assert vcl.simulated_seconds > 1.5 * oa.simulated_seconds
        # Ordering among the joining algorithms.
        assert oa.simulated_seconds <= outcomes["lookup"].simulated_seconds + 1e-6
        assert (outcomes["lookup"].simulated_seconds
                <= outcomes["sharding"].simulated_seconds + 1e-6)

    lowest = sweep[min(sweep)]
    highest = sweep[max(sweep)]
    factor_low = speedup(lowest["vcl"].simulated_seconds,
                         lowest["online_aggregation"].simulated_seconds)
    factor_high = speedup(highest["vcl"].simulated_seconds,
                          highest["online_aggregation"].simulated_seconds)
    print()
    print(f"VCL / Online-Aggregation speedup: {factor_low:.1f}x at t={min(sweep)}, "
          f"{factor_high:.1f}x at t={max(sweep)} "
          "(paper reports 30x and 5x on the full-size dataset).")
    # VCL's disadvantage shrinks as the threshold rises (prefix filtering
    # becomes effective), as in the paper.
    assert factor_low > factor_high
