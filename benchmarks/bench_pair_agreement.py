"""Section 7.1 correctness claim: every algorithm finds the same pairs.

"Understandably, all the algorithms produced the same number of similar
pairs of IPs for each value of t."  This benchmark runs the three
V-SMART-Join algorithms, the VCL baseline and the sequential baselines on
the small dataset and checks the stronger property that the *sets* of pairs
are identical (and match the exact in-memory join).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_algorithm
from repro.analysis.reporting import format_table
from repro.baselines.inverted_index import InvertedIndexJoin
from repro.baselines.ppjoin import PPJoin
from repro.similarity.exact import all_pairs_exact

THRESHOLDS = (0.1, 0.5, 0.9)
DISTRIBUTED = ("online_aggregation", "lookup", "sharding", "vcl")


def test_pair_agreement(benchmark, small_dataset, cluster_500, cost_parameters,
                        bench_record):
    multisets = small_dataset.multisets

    def run():
        report = {}
        for threshold in THRESHOLDS:
            exact = {p.pair for p in all_pairs_exact(multisets, "ruzicka", threshold)}
            per_algorithm = {"exact": exact}
            for algorithm in DISTRIBUTED:
                outcome = run_algorithm(algorithm, multisets, threshold=threshold,
                                        cluster=cluster_500, sharding_threshold=1000,
                                        cost_parameters=cost_parameters)
                per_algorithm[algorithm] = {p.pair for p in outcome.pairs}
            per_algorithm["inverted_index"] = {
                p.pair for p in InvertedIndexJoin("ruzicka", threshold).run(multisets)}
            per_algorithm["ppjoin"] = {
                p.pair for p in PPJoin("ruzicka", threshold).run(multisets)}
            report[threshold] = per_algorithm
        return report

    report = run_once(benchmark, run)
    bench_record["pairs_per_algorithm"] = {
        threshold: {name: len(pairs) for name, pairs in per_algorithm.items()}
        for threshold, per_algorithm in report.items()}
    rows = []
    for threshold, per_algorithm in sorted(report.items()):
        rows.append([threshold] + [len(per_algorithm[name])
                                   for name in ("exact",) + DISTRIBUTED
                                   + ("inverted_index", "ppjoin")])
    print()
    print(format_table(["threshold", "exact"] + list(DISTRIBUTED)
                       + ["inverted_index", "ppjoin"], rows,
                       title="Number of similar pairs per algorithm (must all agree)"))
    for threshold, per_algorithm in report.items():
        exact = per_algorithm["exact"]
        for name, pairs in per_algorithm.items():
            assert pairs == exact, (threshold, name)
