"""Execution-backend scaling: real wall-clock for 1/2/4 workers.

Unlike the figure benchmarks — which compare deterministic *simulated* run
times — this benchmark measures the *actual* wall-clock of the MapReduce
runner under each execution backend on a CPU-bound job over a Zipf corpus:
every mapper scores one multiset against a reference panel with the exact
similarity measure (the all-pairs verification kernel of the paper's
pipelines), so map work dominates and shuffle volume stays tiny.

Expected shape: the process backend scales with the number of workers
(~linear up to the machine's cores), while the thread backend stays flat —
the work is pure Python, so CPython's GIL serialises it.  The speedup
assertion only fires where it physically can: at least 4 usable cores and
full (non-smoke) mode.

All backends must agree bit-for-bit on the job output and counters — that
part is asserted unconditionally, on every machine and in every mode.

A smoke-scale V-SMART-Join run per backend is included so the scaling
numbers are anchored to the real pipeline, not just the synthetic kernel.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

import numpy as np

from benchmarks.conftest import SMOKE, run_once
from repro.core.multiset import Multiset
from repro.datasets.zipf import BoundedZipf
from repro.mapreduce import (
    Dataset,
    JobSpec,
    LocalJobRunner,
    Mapper,
    ProcessBackend,
    Reducer,
    SerialBackend,
    SummingCombiner,
    TaskContext,
    ThreadBackend,
    laptop_cluster,
)
from repro.mapreduce.backends import default_worker_count
from repro.similarity.registry import get_measure
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig

#: Corpus / panel sizes (full mode vs CI smoke mode).
NUM_MULTISETS = 60 if SMOKE else 240
PANEL_SIZE = 30 if SMOKE else 90
ELEMENTS_PER_MULTISET = 60 if SMOKE else 110
ALPHABET = 4000
WORKER_GRID = (1, 2, 4)
SEED = 2012


def zipf_corpus(count: int, prefix: str = "m") -> list[Multiset]:
    """Deterministic Zipf-skewed multisets over a shared alphabet."""
    rng = np.random.default_rng(SEED)
    distribution = BoundedZipf(ALPHABET, 1.1)
    corpus = []
    for index in range(count):
        elements = distribution.sample(rng, ELEMENTS_PER_MULTISET)
        contents: dict[str, int] = {}
        for element in elements:
            name = f"e{int(element)}"
            contents[name] = contents.get(name, 0) + 1
        corpus.append(Multiset(f"{prefix}{index}", contents))
    return corpus


class PanelScoringMapper(Mapper):
    """Score one multiset against every panel member (CPU-bound map work)."""

    def __init__(self, measure_name: str) -> None:
        self.measure_name = measure_name

    def map(self, record: Multiset, context: TaskContext) -> Iterator[tuple]:
        measure = get_measure(self.measure_name)
        best_reference = None
        best_similarity = -1.0
        for reference in context.side_data:
            similarity = measure.similarity(record, reference)
            if similarity > best_similarity:
                best_similarity = similarity
                best_reference = reference.id
        context.increment("panel/scored", len(context.side_data))
        yield (best_reference, 1)


class CountReducer(Reducer):
    def reduce(self, key, values: Sequence[int], context: TaskContext) -> Iterator[tuple]:
        yield (key, sum(values))


def build_job(panel: list[Multiset]) -> JobSpec:
    return JobSpec(name="panel_scoring",
                   mapper=PanelScoringMapper("ruzicka"),
                   reducer=CountReducer(),
                   combiner=SummingCombiner(),
                   side_data=panel,
                   side_data_bytes=1)  # panel residency is not under test here


def timed_run(backend, job: JobSpec, dataset: Dataset) -> tuple[float, object]:
    runner = LocalJobRunner(laptop_cluster(), backend=backend)
    started = time.perf_counter()
    result = runner.run(job, dataset)
    return time.perf_counter() - started, result


def test_backend_scaling(benchmark, bench_record):
    corpus = zipf_corpus(NUM_MULTISETS)
    panel = zipf_corpus(PANEL_SIZE, prefix="ref")
    job = build_job(panel)
    dataset = Dataset("zipf_corpus", corpus)
    cores = default_worker_count()

    def run():
        rows = {}
        serial_seconds, base = timed_run(SerialBackend(), job, dataset)
        rows["serial"] = {"workers": 1, "seconds": serial_seconds, "speedup": 1.0}
        for workers in WORKER_GRID:
            with ProcessBackend(num_workers=workers) as backend:
                seconds, result = timed_run(backend, job, dataset)
            assert list(result.output.records) == list(base.output.records)
            assert result.stats.counters == base.stats.counters
            rows[f"process[{workers}]"] = {"workers": workers, "seconds": seconds,
                                           "speedup": serial_seconds / seconds}
        with ThreadBackend(num_workers=4) as backend:
            seconds, result = timed_run(backend, job, dataset)
        assert list(result.output.records) == list(base.output.records)
        rows["thread[4]"] = {"workers": 4, "seconds": seconds,
                             "speedup": serial_seconds / seconds}
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"Backend scaling on the Zipf corpus ({NUM_MULTISETS} multisets x "
          f"{PANEL_SIZE} panel, {cores} usable cores):")
    for name, row in rows.items():
        print(f"  {name:>12}: {row['seconds']:.3f}s  ({row['speedup']:.2f}x)")

    bench_record["usable_cores"] = cores
    bench_record["corpus_multisets"] = NUM_MULTISETS
    bench_record["panel_size"] = PANEL_SIZE
    bench_record["backends"] = rows

    # The strict scaling claim needs hardware that can express it: with at
    # least 4 usable cores and the full-size corpus, 4 process workers must
    # beat the serial runner by >= 1.5x real wall-clock.
    if cores >= 4 and not SMOKE:
        assert rows["process[4]"]["speedup"] >= 1.5, rows
    # More workers never changes results (asserted inside run()); and on any
    # machine the 4-worker run must at least not collapse under overhead.
    assert rows["process[4]"]["seconds"] < 25 * rows["serial"]["seconds"]


def test_backend_parity_on_join(bench_record):
    """The real pipeline agrees across backends at smoke scale."""
    corpus = zipf_corpus(40)
    config = VSmartJoinConfig(algorithm="online_aggregation", measure="ruzicka",
                              threshold=0.2)
    results = {}
    timings = {}
    for name, backend in (("serial", SerialBackend()),
                          ("thread", ThreadBackend(num_workers=4)),
                          ("process", ProcessBackend(num_workers=4))):
        with backend:
            join = VSmartJoin(config, cluster=laptop_cluster(), backend=backend)
            started = time.perf_counter()
            outcome = join.run(corpus)
            timings[name] = time.perf_counter() - started
            results[name] = outcome
    base = results["serial"]
    for name, outcome in results.items():
        assert outcome.pairs == base.pairs, name
        assert outcome.counters() == base.counters(), name
        assert outcome.simulated_seconds == base.simulated_seconds, name
    print()
    print(f"vsmart_join parity ok: {len(base.pairs)} pairs; wall-clock "
          + ", ".join(f"{name} {seconds:.2f}s" for name, seconds in timings.items()))
    bench_record["num_pairs"] = len(base.pairs)
    bench_record["wall_clock_seconds"] = timings
