"""Figure 2: the distribution of elements (cookies) per multiset (IP).

The paper plots the heavy-tailed distribution of the number of distinct
cookies observed per IP for its datasets.  This benchmark prints the
log-binned histogram and tail summary of the same distribution for both
synthetic presets and checks that the skew the algorithms rely on is there.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.datasets.stats import (
    elements_per_multiset,
    log_binned_histogram,
    skew_ratio,
    summarise_distribution,
)


def _report(name, dataset):
    values = elements_per_multiset(dataset.multisets)
    histogram = log_binned_histogram(values)
    summary = summarise_distribution(values)
    rows = [[f"[{low}, {high})", count] for low, high, count in histogram]
    print()
    print(format_table(["elements per multiset", "number of multisets"], rows,
                       title=f"Fig. 2 ({name} dataset): distribution of elements per multiset"))
    print(f"  multisets={summary.count}  min={summary.minimum}  median={summary.median:.0f}  "
          f"p90={summary.percentile_90:.0f}  p99={summary.percentile_99:.0f}  "
          f"max={summary.maximum}  skew(max/mean)={skew_ratio(values):.1f}")
    return values


def _record(bench_record, values):
    bench_record["histogram"] = log_binned_histogram(values)
    bench_record["skew"] = skew_ratio(values)
    bench_record["count"] = len(values)


def test_fig2_small_dataset(benchmark, small_dataset, bench_record):
    values = run_once(benchmark, lambda: _report("small", small_dataset))
    _record(bench_record, values)
    assert skew_ratio(values) > 3.0


def test_fig2_realistic_dataset(benchmark, realistic_dataset, bench_record):
    values = run_once(benchmark, lambda: _report("realistic", realistic_dataset))
    _record(bench_record, values)
    assert skew_ratio(values) > 3.0
    assert max(values) > max(elements_per_multiset(realistic_dataset.multisets)) * 0.99
