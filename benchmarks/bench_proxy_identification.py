"""Section 7.4: identifying proxies — coverage, false positives, filtering.

The paper judges each threshold by the coverage of the discovered similar
IPs and their false positives, and reports that filtering out IPs with fewer
than 50 cookies almost eliminated the false positives (and, as a side
effect, let the Lookup algorithm's table fit in memory again).  With planted
ground truth the same analysis is quantitative here.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_SHARDING_C, run_once
from repro.analysis.calibration import paper_scale_cluster
from repro.analysis.experiments import run_algorithm
from repro.analysis.reporting import format_table
from repro.communities.proxies import evaluate_proxy_discovery, filter_small_multisets

THRESHOLDS = (0.1, 0.3, 0.5)
#: Scaled-down analogue of the paper's 50-cookie filter.
MINIMUM_COOKIES = 25


def test_proxy_identification(benchmark, realistic_dataset, cost_parameters,
                              bench_record):
    dataset = realistic_dataset
    cluster = paper_scale_cluster(500)

    def run():
        report = {}
        filtered = filter_small_multisets(dataset.multisets, MINIMUM_COOKIES)
        filtered_ids = {m.id for m in filtered}
        for threshold in THRESHOLDS:
            raw = run_algorithm("online_aggregation", dataset.multisets,
                                threshold=threshold, cluster=cluster,
                                sharding_threshold=DEFAULT_SHARDING_C,
                                cost_parameters=cost_parameters)
            cleaned = run_algorithm("online_aggregation", filtered,
                                    threshold=threshold, cluster=cluster,
                                    sharding_threshold=DEFAULT_SHARDING_C,
                                    cost_parameters=cost_parameters)
            report[threshold] = {
                "raw": evaluate_proxy_discovery(raw.pairs, dataset.proxy_groups,
                                                threshold),
                "filtered": evaluate_proxy_discovery(cleaned.pairs, dataset.proxy_groups,
                                                     threshold,
                                                     restrict_to_ids=filtered_ids),
            }
        lookup_after_filter = run_algorithm("lookup", filtered, threshold=0.5,
                                            cluster=cluster,
                                            sharding_threshold=DEFAULT_SHARDING_C,
                                            cost_parameters=cost_parameters,
                                            keep_pairs=False)
        return report, lookup_after_filter

    report, lookup_after_filter = run_once(benchmark, run)
    bench_record["quality"] = {
        threshold: {variant: {"discovered_pairs": evaluation.discovered_pairs,
                              "coverage": evaluation.coverage,
                              "false_positive_rate": evaluation.false_positive_rate}
                    for variant, evaluation in evaluations.items()}
        for threshold, evaluations in report.items()}
    bench_record["lookup_after_filter"] = lookup_after_filter.status
    rows = []
    for threshold, evaluations in sorted(report.items()):
        raw = evaluations["raw"]
        cleaned = evaluations["filtered"]
        rows.append([threshold,
                     raw.discovered_pairs, f"{raw.coverage:.2f}",
                     f"{raw.false_positive_rate:.2f}",
                     cleaned.discovered_pairs, f"{cleaned.coverage:.2f}",
                     f"{cleaned.false_positive_rate:.2f}"])
    print()
    print(format_table(
        ["t", "pairs", "coverage", "FP rate",
         "pairs (filtered)", "coverage (filtered)", "FP rate (filtered)"],
        rows, title="Section 7.4: proxy identification quality "
                    f"(small-IP filter at {MINIMUM_COOKIES} cookies)"))
    print()
    print("Lookup on the filtered dataset:",
          "finished" if lookup_after_filter.finished else lookup_after_filter.status,
          "(the paper notes the filter let Lookup's table fit in memory)")

    lowest = report[min(THRESHOLDS)]
    # The lowest threshold has the highest coverage and the most false positives.
    assert lowest["raw"].coverage >= report[max(THRESHOLDS)]["raw"].coverage
    for threshold in THRESHOLDS:
        raw = report[threshold]["raw"]
        cleaned = report[threshold]["filtered"]
        # Filtering small IPs never increases the false-positive rate.
        assert cleaned.false_positive_rate <= raw.false_positive_rate + 1e-9
    # The filter brings the low-threshold false positives close to zero.
    assert report[min(THRESHOLDS)]["filtered"].false_positive_rate < 0.2
    # And it lets Lookup run again (its table now fits).
    assert lookup_after_filter.finished
