"""Diff freshly recorded ``BENCH_*.json`` files against committed baselines.

Every benchmark dumps its headline series through the ``bench_record``
fixture (see ``benchmarks/conftest.py``).  The series are dominated by
*deterministic* quantities — simulated run times from the cost model,
counter values, pair counts — so a committed baseline plus a tolerance band
turns the benchmark suite into a perf-regression gate: CI's ``bench-smoke``
job runs the suite in smoke mode and calls this script against
``benchmarks/baselines/``.

Rules:

* a baseline file whose counterpart is missing from the new run fails (a
  benchmark silently dropped is itself a regression);
* a new file without a baseline is reported but passes (new benchmarks
  land before their baselines settle);
* files are compared only when recorded in the same mode (smoke / quick /
  full — the grids differ across modes);
* numeric leaves must agree within ``--tolerance`` (relative, with an
  absolute floor for near-zero values); keys matching a noisy-name pattern
  (wall-clock timings, QPS, speedup ratios) are skipped — those belong to
  the benchmarks' own assertions, not to a cross-machine diff;
* non-numeric leaves (statuses, labels) must match exactly.

``--update`` rewrites the baselines from the new run instead of checking —
the intended workflow when a PR deliberately changes a series.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Iterator

#: Substrings marking wall-clock-derived (machine-dependent) series keys.
#: Note "seconds" on its own is NOT noisy — the figure series are
#: *simulated* seconds from the deterministic cost model and are exactly
#: what the gate exists to watch; only a bare ``seconds`` leaf (real timing,
#: see :func:`is_noisy`) is excluded.
NOISY_SUBSTRINGS = ("wall", "qps", "elapsed", "speedup", "usable_cores",
                    "dict_seconds", "array_seconds", "per_second", "latency")

#: Files produced by other tooling (pytest-benchmark's own dump) that are
#: not bench_record series and never get baselines.
IGNORED_FILES = ("BENCH_wallclock.json",)

#: Relative difference below which values are considered unchanged.
DEFAULT_TOLERANCE = 0.25

#: Absolute floor: differences below this never fail, whatever the ratio.
ABSOLUTE_FLOOR = 1e-6


def is_noisy(path: str) -> bool:
    """Whether a series path refers to a machine-dependent quantity."""
    lowered = path.lower()
    if any(marker in lowered for marker in NOISY_SUBSTRINGS):
        return True
    # A leaf literally called "seconds" is a wall-clock reading (the
    # backend-scaling series); qualified names like "simulated_seconds" or
    # "sharding1_seconds" are cost-model outputs and stay comparable.
    leaf = lowered.rsplit(".", 1)[-1]
    return leaf == "seconds"


def walk_leaves(value, path: str = "") -> Iterator[tuple[str, object]]:
    """Yield ``(dotted.path, leaf)`` pairs of a nested JSON document."""
    if isinstance(value, dict):
        for key, item in value.items():
            yield from walk_leaves(item, f"{path}.{key}" if path else str(key))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from walk_leaves(item, f"{path}[{index}]")
    else:
        yield path, value


def compare_documents(name: str, baseline: dict, fresh: dict,
                      tolerance: float) -> tuple[list[str], list[str]]:
    """Compare two BENCH documents; returns (failures, notes)."""
    failures: list[str] = []
    notes: list[str] = []
    if baseline.get("mode") != fresh.get("mode"):
        notes.append(f"{name}: mode changed "
                     f"({baseline.get('mode')} -> {fresh.get('mode')}); "
                     "series not comparable, skipped")
        return failures, notes
    baseline_leaves = dict(walk_leaves(baseline.get("series", {})))
    fresh_leaves = dict(walk_leaves(fresh.get("series", {})))
    for path in sorted(baseline_leaves.keys() - fresh_leaves.keys()):
        notes.append(f"{name}: series key {path} disappeared")
    for path in sorted(fresh_leaves.keys() - baseline_leaves.keys()):
        notes.append(f"{name}: new series key {path}")
    for path in sorted(baseline_leaves.keys() & fresh_leaves.keys()):
        if is_noisy(path):
            continue
        expected = baseline_leaves[path]
        actual = fresh_leaves[path]
        numeric = (isinstance(expected, (int, float))
                   and not isinstance(expected, bool)
                   and isinstance(actual, (int, float))
                   and not isinstance(actual, bool))
        if not numeric:
            if expected != actual:
                failures.append(f"{name}: {path} changed "
                                f"{expected!r} -> {actual!r}")
            continue
        difference = abs(actual - expected)
        if difference <= ABSOLUTE_FLOOR:
            continue
        scale = max(abs(expected), abs(actual))
        if difference / scale > tolerance:
            failures.append(
                f"{name}: {path} moved {expected} -> {actual} "
                f"({difference / scale:+.1%} vs tolerance {tolerance:.0%})")
    return failures, notes


def bench_files(directory: str) -> dict[str, str]:
    """Map ``BENCH_*.json`` file names in a directory to their paths."""
    if not os.path.isdir(directory):
        return {}
    return {entry: os.path.join(directory, entry)
            for entry in sorted(os.listdir(directory))
            if entry.startswith("BENCH_") and entry.endswith(".json")
            and entry not in IGNORED_FILES}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json results against committed baselines.")
    parser.add_argument("new_dir",
                        help="directory holding the freshly recorded files")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(__file__),
                                             "baselines"),
                        help="directory holding the committed baselines")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative tolerance band (default: %(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines from the new run")
    arguments = parser.parse_args(argv)

    fresh = bench_files(arguments.new_dir)
    if arguments.update:
        os.makedirs(arguments.baseline, exist_ok=True)
        for name, path in fresh.items():
            shutil.copyfile(path, os.path.join(arguments.baseline, name))
            print(f"updated baseline {name}")
        return 0

    baselines = bench_files(arguments.baseline)
    failures: list[str] = []
    notes: list[str] = []
    for name, baseline_path in baselines.items():
        fresh_path = fresh.get(name)
        if fresh_path is None:
            failures.append(f"{name}: baseline exists but the new run "
                            "produced no such file")
            continue
        with open(baseline_path, encoding="utf-8") as handle:
            baseline_document = json.load(handle)
        with open(fresh_path, encoding="utf-8") as handle:
            fresh_document = json.load(handle)
        file_failures, file_notes = compare_documents(
            name, baseline_document, fresh_document, arguments.tolerance)
        failures.extend(file_failures)
        notes.extend(file_notes)
    for name in sorted(fresh.keys() - baselines.keys()):
        notes.append(f"{name}: no baseline yet (run with --update to add)")

    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"\n{len(failures)} benchmark regression(s) beyond the "
              f"{arguments.tolerance:.0%} tolerance band:", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        print("\nIf the movement is intended, refresh the baselines:\n"
              f"  python benchmarks/check_regression.py {arguments.new_dir} "
              f"--baseline {arguments.baseline} --update", file=sys.stderr)
        return 1
    compared = len(baselines.keys() & fresh.keys())
    print(f"ok: {compared} benchmark file(s) within the "
          f"{arguments.tolerance:.0%} tolerance band")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
