"""HTTP serving latency: p50/p95/p99 and QPS versus shard count.

Starts a real in-process HTTP server (the stdlib asyncio transport of
:mod:`repro.server`) over fleets of increasing shard counts, replays the
same seeded unified-API request workload both closed-loop (fixed client
concurrency) and open-loop (Poisson arrivals at a fixed offered rate), and
records the latency percentiles and throughput of each configuration.

Two invariants ride along as assertions: every fleet shape serves the same
total answer volume, and the wire answers are bit-identical to direct
in-process :meth:`ShardedSimilarityService.batch` calls — the tentpole
contract of the unified query API.
"""

from __future__ import annotations

from benchmarks.conftest import SMOKE, run_once
from repro.analysis.reporting import format_table
from repro.datasets.workload import (
    RequestWorkloadConfig,
    generate_open_loop_arrivals,
    generate_request_workload,
)
from repro.serving.service import ShardedSimilarityService
from repro.server import (
    InProcessServer,
    ServerConfig,
    SimilarityServerApp,
    run_closed_loop,
    run_open_loop,
)

SHARD_GRID = (1, 2) if SMOKE else (1, 2, 4)
NUM_REQUESTS = 60 if SMOKE else 300
CONCURRENCY = 4
#: Offered load of the open-loop replay, requests/second.
OPEN_LOOP_RATE = 400.0 if SMOKE else 800.0


def _serve_and_replay(num_shards, multisets, requests, arrivals):
    """One fleet shape: start a server, replay both disciplines."""
    service = ShardedSimilarityService("ruzicka", num_shards,
                                      cache_capacity=256)
    service.bulk_load(multisets)
    direct = service.batch(requests)
    app = SimilarityServerApp(service, config=ServerConfig())
    with InProcessServer(app) as server:
        closed = run_closed_loop(server.host, server.port, requests,
                                 concurrency=CONCURRENCY)
        open_loop = run_open_loop(server.host, server.port, requests,
                                  arrivals)
        # Wire parity: the served answers are bit-identical to direct calls.
        from repro.server import SimilarityClient

        with SimilarityClient(server.host, server.port) as client:
            parity = all(client.query(request) == response
                         for request, response in
                         zip(requests[:10], direct[:10]))
    direct_matches = sum(len(response) for response in direct)
    return {
        "num_shards": num_shards,
        "wire_parity": parity,
        "direct_total_matches": direct_matches,
        "closed_loop": closed.to_dict(),
        "open_loop": open_loop.to_dict(),
    }


def test_server_latency_vs_shards(benchmark, small_dataset, bench_record):
    multisets = small_dataset.multisets
    requests = generate_request_workload(
        multisets, RequestWorkloadConfig(num_requests=NUM_REQUESTS,
                                         zipf_exponent=1.3, seed=2026))
    arrivals = generate_open_loop_arrivals(NUM_REQUESTS, OPEN_LOOP_RATE,
                                           seed=2026)

    def run():
        return [_serve_and_replay(num_shards, multisets, requests, arrivals)
                for num_shards in SHARD_GRID]

    results = run_once(benchmark, run)
    bench_record["num_requests"] = NUM_REQUESTS
    bench_record["concurrency"] = CONCURRENCY
    bench_record["open_loop_rate_per_second"] = OPEN_LOOP_RATE
    bench_record["fleets"] = results

    rows = []
    for row in results:
        closed = row["closed_loop"]
        open_loop = row["open_loop"]
        rows.append([row["num_shards"],
                     f"{closed['qps']:,.0f}",
                     f"{closed['p50_latency_ms']:.2f}",
                     f"{closed['p95_latency_ms']:.2f}",
                     f"{closed['p99_latency_ms']:.2f}",
                     f"{open_loop['p95_latency_ms']:.2f}",
                     "yes" if row["wire_parity"] else "NO"])
    print()
    print(format_table(
        ["shards", "closed qps", "p50 ms", "p95 ms", "p99 ms",
         "open p95 ms", "wire==direct"],
        rows,
        title=f"HTTP serving latency: {NUM_REQUESTS} unified-API requests "
              f"({CONCURRENCY} closed-loop clients; open loop at "
              f"{OPEN_LOOP_RATE:,.0f} req/s offered)"))

    for row in results:
        # The wire layer answers bit-identically to direct service calls.
        assert row["wire_parity"]
        # Every replay completed every request (no errors, no rejections
        # at these offered loads).
        assert row["closed_loop"]["num_errors"] == 0
        assert row["closed_loop"]["num_requests"] == NUM_REQUESTS
        # Every fleet shape serves the identical answer volume.
        assert row["closed_loop"]["total_matches"] \
            == row["direct_total_matches"]
    volumes = {row["direct_total_matches"] for row in results}
    assert len(volumes) == 1
