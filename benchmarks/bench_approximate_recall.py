"""Approximate tier: measured recall vs the recall target.

``JoinSpec(..., recall=r)`` admits the approximate algorithms — MinHash/LSH
with banding auto-derived from ``(threshold, recall)``, and the sampled
join — as plannable candidates.  Their contract is one-sided: every
reported pair is exactly verified (precision 1.0), and the expected
fraction of true pairs retained is at least the recall target.

This benchmark runs the exact join on the small preset as ground truth,
then every approximate algorithm across a ``threshold x recall`` grid, and
records per cell:

* measured recall (``|approx ∩ truth| / |truth|``) — asserted ``>= target``;
* precision — asserted exactly 1.0 (approximate pairs are a *subset* of
  the exact result, never a superset);
* the ``JoinResult.exact`` flag — ``True`` only for the exact run.

It also records the planner's ``auto`` choice with and without a recall
target: without one the approximate tier must never be offered; with one
the approximate candidates are priced and (on this corpus, under the
default cost constants) win.

The recall/precision/choice series are deterministic (seeded hashing) and
go through ``bench_record`` into the committed smoke baselines; wall-clock
keys contain ``wall`` so ``check_regression.py`` treats them as noisy.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.engine.engine import SimilarityEngine
from repro.engine.spec import APPROXIMATE_ALGORITHMS, JoinSpec

#: Thresholds low enough for a meaningful truth set on the small preset
#: (667 exact pairs at 0.1, 106 at 0.3 under Ruzicka) — a recall
#: measurement over a handful of pairs would be all variance.
THRESHOLDS = (0.1, 0.3)
RECALL_TARGETS = (0.8, 0.95)


def test_approximate_recall(benchmark, small_dataset, bench_record):
    multisets = small_dataset.multisets

    def run():
        results = {}
        walls = {}
        with SimilarityEngine(multisets) as engine:
            for threshold in THRESHOLDS:
                started = time.perf_counter()
                exact = engine.run(JoinSpec(threshold=threshold,
                                            algorithm="exact"))
                walls[f"exact t={threshold}"] = time.perf_counter() - started
                assert exact.exact
                truth = {pair.pair for pair in exact}
                for algorithm in APPROXIMATE_ALGORITHMS:
                    for target in RECALL_TARGETS:
                        spec = JoinSpec(threshold=threshold,
                                        algorithm=algorithm, recall=target)
                        started = time.perf_counter()
                        result = engine.run(spec)
                        key = f"{algorithm} t={threshold} recall={target}"
                        walls[f"wall {key}"] = time.perf_counter() - started
                        results[key] = (result, truth,
                                        {pair.pair for pair in result})
            plans = {
                "without_recall": engine.plan(JoinSpec(threshold=0.5)),
                "with_recall": engine.plan(JoinSpec(threshold=0.5,
                                                    recall=0.9)),
            }
        return results, walls, plans

    results, walls, plans = run_once(benchmark, run)

    recall_series = {}
    precision_series = {}
    pair_counts = {}
    rows = []
    for key, (result, truth, produced) in results.items():
        assert not result.exact, key
        assert produced <= truth, (key, sorted(produced - truth)[:5])
        target = result.spec.recall
        measured = len(produced) / len(truth) if truth else 1.0
        precision = 1.0 if produced <= truth else 0.0
        recall_series[key] = measured
        precision_series[key] = precision
        pair_counts[key] = len(produced)
        rows.append([key, len(truth), len(produced),
                     f"{measured:.3f}", f"{target:.2f}",
                     "yes" if measured >= target else "NO"])

    bench_record["recall"] = recall_series
    bench_record["precision"] = precision_series
    bench_record["pairs"] = pair_counts
    bench_record["wall_seconds"] = walls

    # The planner's auto path: the approximate tier exists only behind an
    # explicit recall target.
    offered = {name: sorted(candidate.algorithm
                            for candidate in plan.candidates)
               for name, plan in plans.items()}
    choices = {name: plan.algorithm for name, plan in plans.items()}
    bench_record["auto_offered"] = offered
    bench_record["auto_choice"] = choices

    print()
    print(format_table(
        ["configuration", "truth pairs", "found", "recall", "target", "meets"],
        rows,
        title="Approximate tier recall vs target (small dataset)"))
    print(f"\nauto without recall -> {choices['without_recall']} "
          f"(offered: {', '.join(offered['without_recall'])})")
    print(f"auto with recall=0.9 -> {choices['with_recall']} "
          f"(offered: {', '.join(offered['with_recall'])})")

    # The acceptance criterion: every cell's measured recall meets its
    # target (deterministic — the hash seeds are fixed).
    for key, (result, truth, produced) in results.items():
        measured = recall_series[key]
        assert measured >= result.spec.recall, (key, measured)

    # Exactness is opt-out, never silent: no approximate candidate without
    # a recall target, approximate candidates priced once one is given.
    assert not set(offered["without_recall"]) & set(APPROXIMATE_ALGORITHMS)
    assert set(APPROXIMATE_ALGORITHMS) <= set(offered["with_recall"])
    assert choices["with_recall"] in APPROXIMATE_ALGORITHMS
