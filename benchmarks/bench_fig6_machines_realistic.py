"""Figure 6: run time vs number of machines on the realistic dataset (t = 0.5).

Expected shape (paper section 7.2): Lookup never finishes because the lookup
table mapping every multiset to Uni(Mi) does not fit in a machine's memory;
VCL never finishes either (it cannot load the frequency-sorted alphabet, and
the hash-ordered fallback still dies on whole-multiset records / the
scheduler); Online-Aggregation and Sharding both scale out with the machine
count, with Online-Aggregation the faster of the two, and the shared
similarity phase reported separately from the joining phase.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_SHARDING_C, MACHINE_GRID, base_cluster, run_once
from repro.analysis.experiments import run_algorithm
from repro.analysis.reporting import format_table, outcome_cell

SCALING_ALGORITHMS = ("online_aggregation", "sharding")


def test_fig6_machine_sweep_realistic(benchmark, realistic_dataset, cost_parameters,
                                      bench_record):
    multisets = realistic_dataset.multisets

    def run():
        results = {}
        # Lookup and VCL fail for machine-count-independent reasons (memory);
        # run them once at the default fleet size, as the paper reports.
        # The failure scenarios pin intern=False (and the whole figure pins
        # prune_candidates=False): the paper's lookup table
        # carries the raw identifiers, and the interned table is enough
        # smaller to squeak under the scaled-down memory budget, which would
        # flip the reproduced outcome.
        for algorithm, options in (("lookup", {}),
                                   ("vcl", {"vcl_element_order": "frequency"}),
                                   ("vcl_hash_order", {"vcl_element_order": "hash"})):
            name = "vcl" if algorithm.startswith("vcl") else algorithm
            results[algorithm] = run_algorithm(
                name, multisets, threshold=0.5, cluster=base_cluster(),
                sharding_threshold=DEFAULT_SHARDING_C, intern=False,
                prune_candidates=False,
                cost_parameters=cost_parameters, keep_pairs=False, **options)
        sweep = {}
        for machines in MACHINE_GRID:
            cluster = base_cluster().with_machines(machines)
            sweep[machines] = {
                algorithm: run_algorithm(algorithm, multisets, threshold=0.5,
                                         cluster=cluster,
                                         sharding_threshold=DEFAULT_SHARDING_C,
                                         cost_parameters=cost_parameters,
                                         intern=False, prune_candidates=False,
                                         keep_pairs=False)
                for algorithm in SCALING_ALGORITHMS
            }
        return results, sweep

    failures, sweep = run_once(benchmark, run)
    bench_record["failures"] = {name: outcome.status
                                for name, outcome in failures.items()}
    bench_record["scaling"] = {
        machines: {name: {"total": outcome.simulated_seconds,
                          "joining": outcome.joining_seconds,
                          "similarity": outcome.similarity_seconds}
                   for name, outcome in outcomes.items()}
        for machines, outcomes in sweep.items()}

    print()
    print("Fig. 6 (realistic dataset, t = 0.5):")
    print(f"  Lookup:                     {outcome_cell(failures['lookup'])}")
    print(f"  VCL (frequency-sorted):     {outcome_cell(failures['vcl'])}")
    print(f"  VCL (hash-ordered retry):   {outcome_cell(failures['vcl_hash_order'])}")
    rows = []
    for machines in sorted(sweep):
        row = [machines]
        for algorithm in SCALING_ALGORITHMS:
            outcome = sweep[machines][algorithm]
            row.append(outcome_cell(outcome))
            row.append(f"{outcome.joining_seconds:,.0f}s")
            row.append(f"{outcome.similarity_seconds:,.0f}s")
        rows.append(row)
    print()
    print(format_table(
        ["machines",
         "online_aggregation total", "OA joining", "OA similarity",
         "sharding total", "Sharding joining", "Sharding similarity"],
        rows,
        title="Simulated run time vs machines (joining and similarity phases split)"))

    # The paper's qualitative findings.
    assert failures["lookup"].status == "out_of_memory"
    assert failures["vcl"].status == "out_of_memory"
    assert not failures["vcl_hash_order"].finished
    fewest, most = min(sweep), max(sweep)
    for algorithm in SCALING_ALGORITHMS:
        assert sweep[fewest][algorithm].finished
        assert (sweep[most][algorithm].simulated_seconds
                < sweep[fewest][algorithm].simulated_seconds)
    for machines in sweep:
        oa = sweep[machines]["online_aggregation"]
        sharding = sweep[machines]["sharding"]
        assert oa.num_pairs == sharding.num_pairs
        # Online-Aggregation is the faster of the two (paper: roughly half
        # the time of Sharding; the scaled-down gap is smaller).
        assert oa.simulated_seconds <= sharding.simulated_seconds
        assert oa.joining_seconds <= sharding.joining_seconds
