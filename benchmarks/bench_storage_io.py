"""Storage-tier I/O: save/load/recover throughput and disk query latency.

Runs the small synthetic preset through the whole durable surface and
measures each leg: persisting a finished join result and loading it back
(lazily), persisting a warm serving index, and the crash path — a
:class:`JoinView` attached to a :class:`ViewStore`, a mutation stream
applied with per-batch logging, then a recovery from the file alone.
Point lookups compare :meth:`ResultStore.score` (one indexed SQL probe)
against the in-memory pair dict.

Exactness is asserted on every leg *unconditionally* — the loaded result,
index and recovered view must equal their in-memory originals — because
the storage tier's contract is exact round-trips, not best-effort ones.
Wall-clock series are named with ``_wall_seconds`` / ``_per_second`` so
the regression gate skips them; the deterministic series (pair counts,
parity flags, batch counts) are the committed baseline.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import SMOKE, run_once
from repro.analysis.reporting import format_table
from repro.datasets.workload import MutationStreamConfig, generate_mutation_stream
from repro.engine.engine import SimilarityEngine
from repro.engine.result import JoinResult
from repro.engine.spec import JoinSpec
from repro.serving.index import SimilarityIndex
from repro.storage import ResultStore
from repro.streaming.view import INCREMENTAL, JoinView

THRESHOLD = 0.5
SPEC = JoinSpec(measure="ruzicka", threshold=THRESHOLD, algorithm="exact")

#: Smoke mode shrinks the corpus so CI's bench job stays quick.
CORPUS_SIZE = 120 if SMOKE else None
#: The logged mutation stream: five batches of 1% churn each.
NUM_BATCHES = 3 if SMOKE else 5
#: Point-lookup probes per side (disk vs memory).
NUM_PROBES = 200 if SMOKE else 2_000


def _timed(function):
    started = time.perf_counter()
    value = function()
    return value, time.perf_counter() - started


def _measure(result, directory):
    rows = {}

    # -- join result: save, lazy load, full lazy consumption ---------------
    result_path = os.path.join(directory, "result.sqlite")
    _, rows["result_save_wall_seconds"] = _timed(
        lambda: result.to_sqlite(result_path))
    loaded, rows["result_open_wall_seconds"] = _timed(
        lambda: JoinResult.from_sqlite(result_path))
    streamed, rows["result_stream_wall_seconds"] = _timed(
        lambda: list(loaded.pairs))
    rows["result_parity"] = streamed == list(result.pairs)
    rows["num_pairs"] = len(result.pairs)

    # -- serving index: save, load -----------------------------------------
    index = result.to_index()
    index_path = os.path.join(directory, "index.sqlite")
    _, rows["index_save_wall_seconds"] = _timed(
        lambda: index.save(index_path))
    loaded_index, rows["index_load_wall_seconds"] = _timed(
        lambda: SimilarityIndex.load(index_path))
    rows["index_parity"] = (loaded_index._postings == index._postings
                            and loaded_index._uni == index._uni)
    rows["num_postings"] = index.num_postings

    # -- view: logged mutation stream, then crash recovery ------------------
    view = result.to_view()
    unlogged = result.to_view()
    batch_size = max(1, len(result.multisets) // 100)
    batches = generate_mutation_stream(
        view.members(), MutationStreamConfig(num_batches=NUM_BATCHES,
                                             batch_size=batch_size,
                                             seed=2012))
    view_path = os.path.join(directory, "view.sqlite")
    subscription = view.persist(view_path)
    _, logged_elapsed = _timed(lambda: [
        view.apply(batch, strategy=INCREMENTAL) for batch in batches])
    _, unlogged_elapsed = _timed(lambda: [
        unlogged.apply(batch, strategy=INCREMENTAL) for batch in batches])
    subscription.detach()  # process death after the last committed batch
    recovered, rows["recover_wall_seconds"] = _timed(
        lambda: JoinView.recover(view_path))
    rows["logged_apply_wall_seconds"] = logged_elapsed
    rows["unlogged_apply_wall_seconds"] = unlogged_elapsed
    rows["recover_parity"] = (recovered.pairs() == view.pairs()
                              and recovered.version == view.version)
    rows["num_batches"] = len(batches)
    rows["batch_size"] = batch_size
    rows["recovered_pairs"] = recovered.num_pairs

    # -- point lookups: disk-backed vs in-memory ----------------------------
    memory_pairs = {pair.pair: pair.similarity for pair in result.pairs}
    probes = [result.pairs[index % len(result.pairs)].pair
              for index in range(NUM_PROBES)]
    with ResultStore(result_path) as store:
        _, disk_elapsed = _timed(lambda: [
            store.score(first, second) for first, second in probes])
    _, memory_elapsed = _timed(lambda: [
        memory_pairs.get((first, second)) for first, second in probes])
    rows["disk_lookups_per_second"] = (len(probes) / disk_elapsed
                                       if disk_elapsed > 0 else float("inf"))
    rows["memory_lookups_per_second"] = (
        len(probes) / memory_elapsed if memory_elapsed > 0 else float("inf"))
    rows["num_probes"] = len(probes)

    assert rows["result_parity"] and rows["index_parity"] \
        and rows["recover_parity"], "storage round-trips must be exact"
    return rows


def test_storage_io(benchmark, small_dataset, bench_record, tmp_path):
    multisets = small_dataset.multisets
    if CORPUS_SIZE is not None:
        multisets = multisets[:CORPUS_SIZE]
    with SimilarityEngine() as engine:
        result = engine.run(SPEC, multisets)

    rows = run_once(benchmark, lambda: _measure(result, str(tmp_path)))

    bench_record["corpus_size"] = len(multisets)
    bench_record["threshold"] = THRESHOLD
    bench_record.update(rows)

    print()
    print(format_table(
        ["leg", "wall", "detail"],
        [["result save", f"{rows['result_save_wall_seconds'] * 1000:,.1f}ms",
          f"{rows['num_pairs']} pairs"],
         ["result lazy stream",
          f"{rows['result_stream_wall_seconds'] * 1000:,.1f}ms",
          f"parity={rows['result_parity']}"],
         ["index save", f"{rows['index_save_wall_seconds'] * 1000:,.1f}ms",
          f"{rows['num_postings']} postings"],
         ["index load", f"{rows['index_load_wall_seconds'] * 1000:,.1f}ms",
          f"parity={rows['index_parity']}"],
         ["logged applies",
          f"{rows['logged_apply_wall_seconds'] * 1000:,.1f}ms",
          f"{rows['num_batches']} batches x {rows['batch_size']}"],
         ["crash recovery", f"{rows['recover_wall_seconds'] * 1000:,.1f}ms",
          f"{rows['recovered_pairs']} pairs, parity={rows['recover_parity']}"],
         ["disk lookups", f"{rows['num_probes']} probes",
          f"{rows['disk_lookups_per_second']:,.0f}/s vs "
          f"{rows['memory_lookups_per_second']:,.0f}/s in memory"]],
        title=f"Storage tier I/O over {len(multisets)} multisets "
              f"(t = {THRESHOLD})"))
