"""Serving throughput: replay a Zipf-skewed query workload, 1 vs 4 shards.

Indexes the small synthetic preset into the online serving layer and
replays a skewed threshold-query workload against a single-node fleet and a
four-shard fleet, reporting wall-clock queries/sec and the LRU cache hit
rate.  The Zipf skew of real query traffic is what makes the result cache
pay: the popular head of the workload is served from memory, so the hit
rate reported here is also the fraction of traffic that never touches a
posting list.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.datasets.workload import (
    QueryWorkloadConfig,
    generate_query_workload,
    workload_statistics,
)
from repro.serving.api import QueryRequest
from repro.serving.service import ShardedSimilarityService

#: Threshold served by the replay (the paper's headline setting).
THRESHOLD = 0.5
NUM_QUERIES = 400
CACHE_CAPACITY = 256


def _replay(num_shards: int, multisets, queries) -> dict[str, float]:
    """Load a fleet, replay the workload, return throughput and hit rate."""
    service = ShardedSimilarityService("ruzicka", num_shards,
                                       cache_capacity=CACHE_CAPACITY)
    service.bulk_load(multisets)
    started = time.perf_counter()
    total_matches = 0
    for query in queries:
        total_matches += len(service.query(
            QueryRequest.threshold(query, THRESHOLD)))
    elapsed = time.perf_counter() - started
    stats = service.stats()
    return {
        "num_shards": num_shards,
        "elapsed_seconds": elapsed,
        "qps": len(queries) / elapsed if elapsed > 0 else float("inf"),
        "cache_hit_rate": stats["cache/hit_rate"],
        "total_matches": total_matches,
    }


def test_serving_qps_one_vs_four_shards(benchmark, small_dataset, bench_record):
    multisets = small_dataset.multisets
    queries = generate_query_workload(
        multisets, QueryWorkloadConfig(num_queries=NUM_QUERIES,
                                       zipf_exponent=1.3, seed=2012))
    workload = workload_statistics(queries)

    def run():
        return [_replay(1, multisets, queries),
                _replay(4, multisets, queries)]

    results = run_once(benchmark, run)
    bench_record["workload"] = workload
    bench_record["fleets"] = results
    rows = [[row["num_shards"],
             f"{row['qps']:,.0f}",
             f"{row['cache_hit_rate']:.1%}",
             f"{row['elapsed_seconds'] * 1000:,.0f}ms",
             row["total_matches"]] for row in results]
    print()
    print(format_table(
        ["shards", "queries/sec", "cache hit rate", "replay time", "matches"],
        rows,
        title=f"Serving QPS: {NUM_QUERIES} Zipf-skewed threshold queries "
              f"(t = {THRESHOLD}) over {len(multisets)} multisets "
              f"({workload['distinct_queries']} distinct, "
              f"{workload['repeat_rate']:.0%} repeats)"))

    single, sharded = results
    # Both fleet shapes serve the identical answer volume.
    assert single["total_matches"] == sharded["total_matches"]
    # The Zipf head repeats, so the LRU absorbs a meaningful share.
    assert single["cache_hit_rate"] > 0.2
    assert sharded["cache_hit_rate"] > 0.2
