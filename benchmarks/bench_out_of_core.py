"""Out-of-core shuffle and SQL-pushdown overhead vs the in-memory runner.

Two questions, both measured in real wall-clock on Zipf corpora:

* what does spilling the shuffle to disk cost, across corpus sizes that
  sit under, around and well over the spill budget?  The budget is pinned
  small so even smoke-scale corpora genuinely go out of core — the point
  is the overhead curve and the spill telemetry, not the absolute sizes;
* what does compiling the reduce phases to SQL buy (or cost) against the
  Python reduce loop on the same joins?

Parity is asserted in every mode and at every size: pairs and counters
(minus the reserved ``shuffle/``/``sql/`` telemetry namespaces) must be
bit-identical to the serial backend, and the disk runs must additionally
prove they spilled (``shuffle/bytes_spilled > 0``) with the buffer ceiling
respected per job.
"""

from __future__ import annotations

import time

from benchmarks.conftest import SMOKE, run_once
from benchmarks.bench_backend_scaling import zipf_corpus
from repro.mapreduce import SerialBackend, get_backend, laptop_cluster
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig

#: Corpus-size grid: spans the spill budget from "fits" to "several runs".
SIZE_GRID = (20, 40, 80) if SMOKE else (40, 120, 360)
#: Spill budget (bytes): small enough that the mid/large sizes go to disk.
MEMORY_BUDGET = 24 * 1024 if SMOKE else 96 * 1024
MERGE_FAN_IN = 4
THRESHOLD = 0.2


def strip_telemetry(counters):
    return {name: value for name, value in counters.items()
            if not name.startswith(("shuffle/", "sql/"))}


def timed_join(backend, corpus):
    config = VSmartJoinConfig(algorithm="online_aggregation",
                              measure="ruzicka", threshold=THRESHOLD)
    join = VSmartJoin(config, cluster=laptop_cluster(), backend=backend)
    started = time.perf_counter()
    outcome = join.run(corpus)
    return time.perf_counter() - started, outcome


def assert_parity(base, other, context):
    assert other.pairs == base.pairs, context
    assert (strip_telemetry(other.counters())
            == strip_telemetry(base.counters())), context


def test_out_of_core_shuffle(benchmark, bench_record):
    corpora = {size: zipf_corpus(size) for size in SIZE_GRID}

    def run():
        rows = {}
        for size, corpus in corpora.items():
            serial_seconds, base = timed_join(SerialBackend(), corpus)
            disk = get_backend("disk", memory_budget_bytes=MEMORY_BUDGET,
                               merge_fan_in=MERGE_FAN_IN)
            disk_seconds, outcome = timed_join(disk, corpus)
            assert_parity(base, outcome, ("disk", size))
            counters = outcome.counters()
            shuffled = sum(stats.shuffle_bytes
                           for stats in outcome.pipeline.job_stats)
            rows[size] = {
                "serial_wall_seconds": serial_seconds,
                "disk_wall_seconds": disk_seconds,
                "overhead_wall": disk_seconds / serial_seconds,
                "shuffle_bytes": shuffled,
                "bytes_spilled": counters.get("shuffle/bytes_spilled", 0),
                "runs_written": counters.get("shuffle/runs_written", 0),
                "merge_passes": counters.get("shuffle/merge_passes", 0),
                "num_pairs": len(base.pairs),
            }
            for stats in outcome.pipeline.job_stats:
                peak = stats.counters.get("shuffle/peak_buffer_bytes", 0)
                assert peak <= MEMORY_BUDGET, (size, stats.job_name)
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"Out-of-core shuffle vs in-memory (budget {MEMORY_BUDGET:,} B, "
          f"fan-in {MERGE_FAN_IN}):")
    print(f"  {'multisets':>9}  {'serial':>8}  {'disk':>8}  {'ovh':>6}"
          f"  {'shuffled':>10}  {'spilled':>10}  {'runs':>5}  {'passes':>6}")
    for size, row in rows.items():
        print(f"  {size:>9}  {row['serial_wall_seconds']:>7.3f}s  "
              f"{row['disk_wall_seconds']:>7.3f}s  {row['overhead_wall']:>5.2f}x  "
              f"{row['shuffle_bytes']:>10,}  {row['bytes_spilled']:>10,}  "
              f"{row['runs_written']:>5}  {row['merge_passes']:>6}")

    bench_record["memory_budget_bytes"] = MEMORY_BUDGET
    bench_record["sizes"] = rows

    # The largest size must genuinely exceed the budget and go out of core.
    largest = rows[max(SIZE_GRID)]
    assert largest["shuffle_bytes"] > MEMORY_BUDGET, largest
    assert largest["bytes_spilled"] > 0, largest
    # Spilling is overhead, but it must stay sane on an SSD-era machine.
    assert largest["overhead_wall"] < 50, largest


def test_sql_pushdown(benchmark, bench_record):
    corpora = {size: zipf_corpus(size) for size in SIZE_GRID}

    def run():
        rows = {}
        for size, corpus in corpora.items():
            serial_seconds, base = timed_join(SerialBackend(), corpus)
            sql_seconds, outcome = timed_join(get_backend("sql"), corpus)
            assert_parity(base, outcome, ("sql", size))
            counters = outcome.counters()
            rows[size] = {
                "serial_wall_seconds": serial_seconds,
                "sql_wall_seconds": sql_seconds,
                "ratio_wall": sql_seconds / serial_seconds,
                "pushdown_jobs": counters.get("sql/pushdown_jobs", 0),
                "fallback_jobs": counters.get("sql/fallback_jobs", 0),
                "num_pairs": len(base.pairs),
            }
        return rows

    rows = run_once(benchmark, run)
    print()
    print("SQL pushdown (sqlite) vs Python reduce loop:")
    print(f"  {'multisets':>9}  {'python':>8}  {'sql':>8}  {'ratio':>6}"
          f"  {'pushed':>6}  {'fellback':>8}  {'pairs':>6}")
    for size, row in rows.items():
        print(f"  {size:>9}  {row['serial_wall_seconds']:>7.3f}s  "
              f"{row['sql_wall_seconds']:>7.3f}s  {row['ratio_wall']:>5.2f}x  "
              f"{row['pushdown_jobs']:>6}  {row['fallback_jobs']:>8}  "
              f"{row['num_pairs']:>6}")

    bench_record["sizes"] = rows
    # The pushdown must actually engage on the similarity pipeline...
    assert all(row["pushdown_jobs"] > 0 for row in rows.values()), rows
    # ...and stay within an order of magnitude of the Python loop even at
    # the smallest (overhead-dominated) size.
    assert all(row["ratio_wall"] < 10 for row in rows.values()), rows
