"""Figure 5: run time vs number of machines on the small dataset (t = 0.5).

Expected shape (paper section 7.1): the V-SMART-Join algorithms keep
speeding up as machines are added (Online-Aggregation improves the most,
Lookup the least because of its fixed table-load overhead), while VCL
plateaus — its bottleneck is the single mapper holding the largest multiset,
which no amount of extra machines helps.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_SHARDING_C, MACHINE_GRID, base_cluster, run_once
from repro.analysis.experiments import machine_sweep
from repro.analysis.reporting import format_sweep_table, relative_drop

ALGORITHMS = ("online_aggregation", "lookup", "sharding", "vcl")


def test_fig5_machine_sweep_small(benchmark, small_dataset, cost_parameters,
                                  bench_record):
    def run():
        # intern=False / prune_candidates=False: the figure reproduces the
        # paper's cross-algorithm cost orderings, which are calibrated to
        # raw-identifier records and the unpruned candidate stream.
        return machine_sweep(ALGORITHMS, small_dataset.multisets, MACHINE_GRID,
                             base_cluster=base_cluster(), threshold=0.5,
                             sharding_threshold=DEFAULT_SHARDING_C,
                             cost_parameters=cost_parameters, intern=False,
                             prune_candidates=False, keep_pairs=False)

    sweep = run_once(benchmark, run)
    bench_record["simulated_seconds"] = {
        machines: {name: outcome.simulated_seconds
                   for name, outcome in outcomes.items()}
        for machines, outcomes in sweep.items()}
    print()
    print(format_sweep_table(sweep, ALGORITHMS, "machines",
                             title="Fig. 5: simulated run time vs number of machines "
                                   "(small dataset, t = 0.5)"))

    fewest, most = min(sweep), max(sweep)
    drops = {}
    for algorithm in ALGORITHMS:
        drops[algorithm] = relative_drop(sweep[fewest][algorithm].simulated_seconds,
                                         sweep[most][algorithm].simulated_seconds)
    bench_record["relative_drop"] = drops
    print()
    print("Relative run-time reduction from "
          f"{fewest} to {most} machines (paper: OA 53%, Lookup 32%, VCL 35%):")
    for algorithm, drop in drops.items():
        print(f"  {algorithm:>20}: {drop * 100:.0f}%")

    # Every V-SMART-Join algorithm keeps benefiting from extra machines.
    for algorithm in ("online_aggregation", "lookup", "sharding"):
        assert drops[algorithm] > 0.2
    # VCL benefits the least: its bottleneck mapper is machine-count-independent.
    assert drops["vcl"] < min(drops[a] for a in ("online_aggregation", "lookup", "sharding"))
    # Online-Aggregation improves at least as much as Lookup (fixed table load).
    assert drops["online_aggregation"] >= drops["lookup"] - 0.02
    # Beyond ~500 machines VCL barely moves (the paper's plateau).
    middle = 500 if 500 in sweep else sorted(sweep)[len(sweep) // 2]
    assert (sweep[middle]["vcl"].simulated_seconds
            - sweep[most]["vcl"].simulated_seconds) < 0.1 * sweep[middle]["vcl"].simulated_seconds
