"""Streaming maintenance throughput: incremental apply vs full re-join.

Materializes the small synthetic preset as a :class:`JoinView` and applies
one mutation batch per churn level (0.1% / 1% / 10% of the corpus),
measuring the wall-clock cost of the incremental delta path against the
cost of the equivalent from-scratch re-join on the mutated corpus.  The
re-join baseline runs the *in-memory exact* algorithm — the cheapest full
recomputation available — so the reported speedup is a floor, not a
simulator artifact.  After every batch the view is checked pair-for-pair
against the re-join, so the speedup is never bought with staleness.

In full mode the 1%-churn batch must apply at least 5x faster than the
re-join (the PR's acceptance criterion); smoke mode records the series
without asserting wall-clock ratios.
"""

from __future__ import annotations

import time

from benchmarks.conftest import SMOKE, run_once
from repro.analysis.reporting import format_table
from repro.datasets.workload import MutationStreamConfig, generate_mutation_stream
from repro.engine.engine import SimilarityEngine
from repro.engine.spec import JoinSpec
from repro.streaming.view import INCREMENTAL

THRESHOLD = 0.5
CHURN_LEVELS = (0.001, 0.01, 0.10)
SPEC = JoinSpec(measure="ruzicka", threshold=THRESHOLD, algorithm="exact")

#: Smoke mode shrinks the corpus so CI's bench job stays quick.
CORPUS_SIZE = 150 if SMOKE else None


def _measure_churn_levels(engine, multisets):
    view = engine.materialize(SPEC, multisets)
    rows = []
    for level_index, churn in enumerate(CHURN_LEVELS):
        members = view.members()
        batch_size = max(1, round(churn * len(members)))
        [batch] = generate_mutation_stream(
            members, MutationStreamConfig(num_batches=1,
                                          batch_size=batch_size,
                                          seed=2012 + level_index))
        started = time.perf_counter()
        deltas = view.apply(batch, strategy=INCREMENTAL)
        apply_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        rejoin = engine.run(SPEC, view.members())
        rejoin_elapsed = time.perf_counter() - started
        # Exactness first: the incremental view equals the re-join.
        assert {pair.pair: pair.similarity for pair in rejoin} == view.pairs()

        rows.append({
            "churn": churn,
            "batch_size": batch_size,
            "num_deltas": len(deltas),
            "num_pairs_after": view.num_pairs,
            "apply_elapsed": apply_elapsed,
            "rejoin_elapsed": rejoin_elapsed,
            "speedup": (rejoin_elapsed / apply_elapsed
                        if apply_elapsed > 0 else float("inf")),
            "changes_per_second": (batch_size / apply_elapsed
                                   if apply_elapsed > 0 else float("inf")),
        })
    return rows


def test_streaming_throughput(benchmark, small_dataset, bench_record):
    multisets = small_dataset.multisets
    if CORPUS_SIZE is not None:
        multisets = multisets[:CORPUS_SIZE]

    with SimilarityEngine() as engine:
        rows = run_once(benchmark,
                        lambda: _measure_churn_levels(engine, multisets))

    bench_record["corpus_size"] = len(multisets)
    bench_record["threshold"] = THRESHOLD
    bench_record["levels"] = rows

    print()
    print(format_table(
        ["churn", "batch", "deltas", "pairs after", "apply", "re-join",
         "speedup"],
        [[f"{row['churn']:.1%}", row["batch_size"], row["num_deltas"],
          row["num_pairs_after"],
          f"{row['apply_elapsed'] * 1000:,.1f}ms",
          f"{row['rejoin_elapsed'] * 1000:,.1f}ms",
          f"{row['speedup']:,.1f}x"] for row in rows],
        title=f"Incremental apply vs full re-join over {len(multisets)} "
              f"multisets (t = {THRESHOLD})"))

    if not SMOKE:
        one_percent = next(row for row in rows if row["churn"] == 0.01)
        assert one_percent["speedup"] >= 5.0, (
            "applying a 1%-churn batch must be at least 5x faster than the "
            f"equivalent full re-join, got {one_percent['speedup']:.1f}x")
