"""Figure 3: the distribution of multisets (IPs) per element (cookie).

The mirror image of Fig. 2: how many IPs share each cookie.  The tail of
this distribution is what drives the Similarity1 reducer load (quadratic in
the element frequency) and the stop-word discussion of section 4.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.datasets.stats import (
    log_binned_histogram,
    multisets_per_element,
    skew_ratio,
    summarise_distribution,
)


def _report(name, dataset):
    values = multisets_per_element(dataset.multisets)
    histogram = log_binned_histogram(values)
    summary = summarise_distribution(values)
    rows = [[f"[{low}, {high})", count] for low, high, count in histogram]
    print()
    print(format_table(["multisets per element", "number of elements"], rows,
                       title=f"Fig. 3 ({name} dataset): distribution of multisets per element"))
    print(f"  elements={summary.count}  median={summary.median:.0f}  "
          f"p99={summary.percentile_99:.0f}  max={summary.maximum}  "
          f"skew(max/mean)={skew_ratio(values):.1f}")
    return values


def _record(bench_record, values):
    bench_record["histogram"] = log_binned_histogram(values)
    bench_record["skew"] = skew_ratio(values)
    bench_record["count"] = len(values)


def test_fig3_small_dataset(benchmark, small_dataset, bench_record):
    values = run_once(benchmark, lambda: _report("small", small_dataset))
    _record(bench_record, values)
    assert skew_ratio(values) > 3.0


def test_fig3_realistic_dataset(benchmark, realistic_dataset, small_dataset,
                                bench_record):
    values = run_once(benchmark, lambda: _report("realistic", realistic_dataset))
    _record(bench_record, values)
    assert skew_ratio(values) > 3.0
    # The realistic preset has the larger alphabet, as in the paper.
    assert len(values) > len(multisets_per_element(small_dataset.multisets))
