"""Figure and table reproduction benchmarks (see DESIGN.md for the index)."""
