"""Shared fixtures for the figure benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation
(section 7) on the scaled-down synthetic presets and prints the same series
the paper plots.  Wall-clock timing is recorded once per benchmark via
pytest-benchmark (``rounds=1``); the numbers the figures compare are the
deterministic *simulated* run times from the cost model, printed as tables.

Set ``REPRO_BENCH_QUICK=1`` to use coarser sweep grids.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.calibration import paper_scale_cluster, paper_scale_cost_parameters
from repro.datasets.ip_cookie import generate_preset

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Threshold grid of Fig. 4 (0.1 .. 0.9).
THRESHOLD_GRID = (0.1, 0.5, 0.9) if QUICK else tuple(round(0.1 * i, 1) for i in range(1, 10))
#: Machine-count grid of Fig. 5 / Fig. 6 (paper: 100 .. 900 step 100).
MACHINE_GRID = (100, 500, 900) if QUICK else (100, 300, 500, 700, 900)
#: Sharding-parameter grid of Fig. 7 (paper: 2^5 .. 2^15).
SHARDING_C_GRID = (32, 1024, 32768) if QUICK else (32, 128, 512, 2048, 8192, 32768)

#: The sharding parameter used for the non-Fig.-7 experiments; the paper
#: observes the sweet spot around C ~ 1000.
DEFAULT_SHARDING_C = 1000


@pytest.fixture(scope="session")
def small_dataset():
    """Scaled-down analogue of the paper's small dataset (82M IPs)."""
    return generate_preset("small")


@pytest.fixture(scope="session")
def realistic_dataset():
    """Scaled-down analogue of the paper's realistic dataset (454M IPs)."""
    return generate_preset("realistic")


@pytest.fixture(scope="session")
def cost_parameters():
    """Cost-model calibration shared by every figure benchmark."""
    return paper_scale_cost_parameters()


@pytest.fixture(scope="session")
def cluster_500():
    """The 500-machine cluster used by the Fig. 4 threshold sweep."""
    return paper_scale_cluster(500)


def base_cluster():
    """The scaled paper cluster, machine count overridden per sweep point."""
    return paper_scale_cluster()


def run_once(benchmark, function):
    """Record a single timed execution of ``function`` with pytest-benchmark."""
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
