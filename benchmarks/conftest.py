"""Shared fixtures for the figure benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation
(section 7) on the scaled-down synthetic presets and prints the same series
the paper plots.  Wall-clock timing is recorded once per benchmark via
pytest-benchmark (``rounds=1``); the numbers the figures compare are the
deterministic *simulated* run times from the cost model, printed as tables.

Every benchmark also dumps its headline series through the ``bench_record``
fixture: a ``BENCH_<name>.json`` file per benchmark, written to
``REPRO_BENCH_RECORD_DIR`` (default: ``benchmarks/results/``).  CI uploads
those files as workflow artifacts so the benchmark trajectory is tracked
run over run.

Modes, selected by environment variable:

* ``REPRO_BENCH_QUICK=1`` — coarser sweep grids, same datasets;
* ``REPRO_BENCH_SMOKE=1`` — implies quick, and additionally shrinks the
  workload sizes of the non-figure benchmarks; this is the mode CI's
  ``bench-smoke`` job runs.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.analysis.calibration import paper_scale_cluster, paper_scale_cost_parameters
from repro.datasets.ip_cookie import generate_preset

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
QUICK = SMOKE or os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Threshold grid of Fig. 4 (0.1 .. 0.9).
THRESHOLD_GRID = (0.1, 0.5, 0.9) if QUICK else tuple(round(0.1 * i, 1) for i in range(1, 10))
#: Machine-count grid of Fig. 5 / Fig. 6 (paper: 100 .. 900 step 100).
MACHINE_GRID = (100, 500, 900) if QUICK else (100, 300, 500, 700, 900)
#: Sharding-parameter grid of Fig. 7 (paper: 2^5 .. 2^15).
SHARDING_C_GRID = (32, 1024, 32768) if QUICK else (32, 128, 512, 2048, 8192, 32768)

#: The sharding parameter used for the non-Fig.-7 experiments; the paper
#: observes the sweet spot around C ~ 1000.
DEFAULT_SHARDING_C = 1000


@pytest.fixture(scope="session")
def small_dataset():
    """Scaled-down analogue of the paper's small dataset (82M IPs)."""
    return generate_preset("small")


@pytest.fixture(scope="session")
def realistic_dataset():
    """Scaled-down analogue of the paper's realistic dataset (454M IPs)."""
    return generate_preset("realistic")


@pytest.fixture(scope="session")
def cost_parameters():
    """Cost-model calibration shared by every figure benchmark."""
    return paper_scale_cost_parameters()


@pytest.fixture(scope="session")
def cluster_500():
    """The 500-machine cluster used by the Fig. 4 threshold sweep."""
    return paper_scale_cluster(500)


def base_cluster():
    """The scaled paper cluster, machine count overridden per sweep point."""
    return paper_scale_cluster()


def run_once(benchmark, function):
    """Record a single timed execution of ``function`` with pytest-benchmark."""
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)


# -- benchmark-result recording ----------------------------------------------


def jsonable(value):
    """Convert benchmark payloads (dataclasses, sets, numpy scalars) to JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(item) for item in value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return jsonable(item())
    return repr(value)


def record_directory() -> str:
    """Where ``BENCH_*.json`` files land (override: REPRO_BENCH_RECORD_DIR)."""
    return os.environ.get(
        "REPRO_BENCH_RECORD_DIR",
        os.path.join(os.path.dirname(__file__), "results"))


@pytest.fixture
def bench_record(request):
    """A dict the benchmark fills with its headline series.

    Whatever the benchmark puts here is written to
    ``BENCH_<benchmark_name>.json`` after the test finishes (pass or fail,
    so regressions still leave a record of the series that tripped them).
    """
    payload: dict = {}
    yield payload
    if not payload:
        return
    name = request.node.name.removeprefix("test_")
    document = {
        "benchmark": name,
        "mode": "smoke" if SMOKE else ("quick" if QUICK else "full"),
        "series": jsonable(payload),
    }
    directory = record_directory()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
