"""Ablation: stop-word filtering and the chunked Similarity1 reducer.

Section 4 offers two remedies for the quadratic load of the Similarity1
reducer that handles the most frequent element: discard stop words (elements
shared by more than q multisets) in a preprocessing step, or dissect the
overloaded reduce value list into chunks whose pairs are expanded by the
Similarity2 mappers.  This ablation compares plain, stop-word-filtered and
chunked runs: chunking preserves the exact result while reducing the
single-reducer bottleneck; stop-word filtering trades recall for load.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig

THRESHOLD = 0.3


def _max_similarity1_group(result):
    for stats in result.pipeline.job_stats:
        if stats.job_name == "similarity1":
            return stats.max_group_records
    return 0


def test_ablation_stop_words_and_chunking(benchmark, small_dataset, cluster_500,
                                          cost_parameters, bench_record):
    multisets = small_dataset.multisets

    def run():
        variants = {
            "plain": VSmartJoinConfig(threshold=THRESHOLD),
            "stop words (q=12)": VSmartJoinConfig(threshold=THRESHOLD,
                                                  stop_word_frequency=12),
            "chunked (T-chunks of 8)": VSmartJoinConfig(threshold=THRESHOLD,
                                                        chunk_size=8),
        }
        return {name: VSmartJoin(config, cluster=cluster_500,
                                 cost_parameters=cost_parameters).run(multisets)
                for name, config in variants.items()}

    outcomes = run_once(benchmark, run)
    bench_record["variants"] = {
        name: {"num_pairs": len(result.pairs),
               "max_similarity1_group": _max_similarity1_group(result),
               "simulated_seconds": result.simulated_seconds}
        for name, result in outcomes.items()}
    rows = []
    for name, result in outcomes.items():
        rows.append([name, len(result.pairs), _max_similarity1_group(result),
                     f"{result.simulated_seconds:,.0f}s"])
    print()
    print(format_table(["variant", "pairs", "largest Similarity1 group (records)",
                        "simulated run time"], rows,
                       title="Ablation: stop words vs chunked Similarity1 reducer "
                             f"(small dataset, t = {THRESHOLD})"))

    plain = outcomes["plain"]
    chunked = outcomes["chunked (T-chunks of 8)"]
    filtered = outcomes["stop words (q=12)"]
    # Chunking is exact: same pairs as the plain run.
    assert {p.pair for p in chunked.pairs} == {p.pair for p in plain.pairs}
    # Stop-word filtering bounds the posting-list length by q, taming the
    # slowest Similarity1 reducer.  (It changes the similarity semantics —
    # dropped elements no longer count towards |Mi| — so the pair set is not
    # comparable to the plain run and is only reported.)
    assert _max_similarity1_group(filtered) <= 12
    assert _max_similarity1_group(filtered) <= _max_similarity1_group(plain)
