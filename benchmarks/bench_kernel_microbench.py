"""Kernel microbenchmark: dict-probe reference vs interned array kernels.

Times the same brute-force all-pair sweep over a Zipf-skewed corpus twice —
once on the measure's per-element dict path (``measure.similarity``: hash
probes plus one ``conj_from_pair``/``conj_merge`` tuple pair per shared
element) and once on the interned merge-scan kernels
(:mod:`repro.similarity.kernels`) — and asserts the array kernel wins by at
least 2x in full mode.  Both sweeps produce the identical pair list, which
is asserted, not assumed.

The second half measures the other tentpole lever on the batch path:
upper-bound candidate pruning in the Similarity1 reducer.  At thresholds of
0.7 and up, most candidate pairs of a skewed corpus provably cannot reach
the threshold from their ``Uni`` tuples alone, so the candidate-record
counter collapses while the join output stays identical (also asserted).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import QUICK, run_once
from repro.analysis.reporting import format_table
from repro.core.multiset import Multiset
from repro.datasets.zipf import BoundedZipf, clipped_zipf_sizes
from repro.mapreduce.cluster import laptop_cluster
from repro.similarity.exact import all_pairs_exact
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig

#: Speedup the array kernel must reach over the dict kernel (full mode).
REQUIRED_SPEEDUP = 2.0
#: Pruning threshold of the acceptance check (the issue's "t >= 0.7").
PRUNE_THRESHOLD = 0.7

MEASURES = ("ruzicka", "jaccard", "vector_cosine")


def zipf_corpus(count: int, alphabet: int, max_size: int,
                seed: int = 2012) -> list[Multiset]:
    """A corpus with Zipf element popularity and Zipf cardinalities.

    Mirrors the paper's workload shape: a few huge multisets, a popular
    head of elements shared by many multisets, and long string elements
    (cookies) so the dict path pays realistic hashing costs.
    """
    rng = np.random.default_rng(seed)
    elements = BoundedZipf(alphabet, 1.1)
    sizes = clipped_zipf_sizes(rng, count, max_size, 1.2, minimum=4)
    corpus = []
    for index, size in enumerate(sizes):
        counts: dict[str, int] = {}
        for rank in elements.sample(rng, int(size)):
            name = f"cookie-{rank:08d}"
            counts[name] = counts.get(name, 0) + 1
        corpus.append(Multiset(f"ip-10.0.{index // 250}.{index % 250}", counts))
    return corpus


def _time_sweep(multisets, measure: str, threshold: float, intern: bool):
    started = time.perf_counter()
    pairs = all_pairs_exact(multisets, measure, threshold, intern=intern)
    return time.perf_counter() - started, pairs


def test_kernel_microbench(benchmark, bench_record):
    corpus = zipf_corpus(count=120 if QUICK else 300,
                         alphabet=800 if QUICK else 2000,
                         max_size=60 if QUICK else 120)

    def run():
        kernel_rows = []
        for measure in MEASURES:
            dict_seconds, dict_pairs = _time_sweep(corpus, measure, 0.3,
                                                   intern=False)
            array_seconds, array_pairs = _time_sweep(corpus, measure, 0.3,
                                                     intern=True)
            assert array_pairs == dict_pairs, measure
            kernel_rows.append({
                "measure": measure,
                "dict_seconds": dict_seconds,
                "array_seconds": array_seconds,
                "speedup": dict_seconds / array_seconds if array_seconds else
                           float("inf"),
                "num_pairs": len(dict_pairs),
            })

        pruning_rows = []
        prune_corpus = corpus[:120]
        for threshold in (0.5, PRUNE_THRESHOLD, 0.9):
            counters = {}
            pairs = {}
            for prune in (False, True):
                config = VSmartJoinConfig(threshold=threshold,
                                          prune_candidates=prune)
                result = VSmartJoin(config, cluster=laptop_cluster()).run(
                    prune_corpus)
                counters[prune] = result.counters()
                pairs[prune] = result.pairs
            assert pairs[True] == pairs[False], threshold
            pruning_rows.append({
                "threshold": threshold,
                "candidates_unpruned": counters[False][
                    "similarity1/candidate_records"],
                "candidates_pruned": counters[True][
                    "similarity1/candidate_records"],
                "pruned_away": counters[True].get(
                    "similarity1/candidates_pruned", 0),
                "num_pairs": len(pairs[True]),
            })
        return kernel_rows, pruning_rows

    kernel_rows, pruning_rows = run_once(benchmark, run)
    bench_record["corpus_multisets"] = len(corpus)
    bench_record["kernel"] = kernel_rows
    bench_record["pruning"] = pruning_rows

    print()
    print(format_table(
        ["measure", "dict kernel", "array kernel", "speedup", "pairs"],
        [[row["measure"],
          f"{row['dict_seconds'] * 1000:,.0f}ms",
          f"{row['array_seconds'] * 1000:,.0f}ms",
          f"{row['speedup']:.1f}x",
          row["num_pairs"]] for row in kernel_rows],
        title=f"All-pair sweep over {len(corpus)} Zipf multisets (t = 0.3)"))
    print()
    print(format_table(
        ["threshold", "candidates (unpruned)", "candidates (pruned)",
         "pruned away", "pairs"],
        [[row["threshold"], row["candidates_unpruned"],
          row["candidates_pruned"], row["pruned_away"], row["num_pairs"]]
         for row in pruning_rows],
        title="Similarity1 candidate records with/without upper-bound pruning"))

    # Pruning is exact, so the candidate stream must only ever shrink — and
    # at t >= 0.7 on a skewed corpus it must shrink measurably.
    for row in pruning_rows:
        assert row["candidates_pruned"] <= row["candidates_unpruned"]
        if row["threshold"] >= PRUNE_THRESHOLD:
            assert row["candidates_pruned"] < row["candidates_unpruned"]
            assert row["pruned_away"] > 0
    if not QUICK:
        for row in kernel_rows:
            assert row["speedup"] >= REQUIRED_SPEEDUP, row
