"""Planner accuracy: predicted algorithm choice vs best-by-measurement.

The engine's ``algorithm="auto"`` planner answers the paper's central
practical question — which algorithm wins for a given dataset and
threshold — from corpus statistics and the cost model alone, without
running the candidates.  This benchmark replays the Fig. 4 threshold sweep
(small dataset, 500 machines, paper calibration) twice: once *measured*
(running all four algorithms, as ``bench_fig4_threshold_sweep`` does) and
once *planned*, and records, per threshold:

* the planner's choice and the measured winner (and whether they agree);
* predicted vs measured simulated seconds for every feasible candidate
  (the prediction/measurement ratio is the planner's calibration error).

It then closes the self-tuning loop: every measured run's per-job
statistics are fed into a :class:`~repro.engine.calibration.
CalibrationProfile` against the plan that predicted them, the sweep is
re-planned with the calibrated planner, and the benchmark asserts that
calibration *strictly tightens* the prediction/measurement band (the worst
multiplicative deviation from 1.0 across the grid).  A storage round-trip
of the trained profile must reproduce the calibrated predictions exactly.

The headline series — agreement per threshold, the chosen algorithm and
both ratio bands — is deterministic and goes through ``bench_record`` into
the committed smoke baselines, so a cost-model, planner or calibration
change that flips a choice or loosens the band trips
``check_regression.py``.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_SHARDING_C, THRESHOLD_GRID, run_once
from repro.analysis.experiments import threshold_sweep
from repro.analysis.reporting import format_table
from repro.engine.calibration import CalibrationProfile
from repro.engine.planner import Planner
from repro.engine.spec import PLANNABLE_ALGORITHMS, JoinSpec

ALGORITHMS = PLANNABLE_ALGORITHMS


def deviation(ratio: float) -> float:
    """Multiplicative distance of a pred/meas ratio from the ideal 1.0."""
    return max(ratio, 1.0 / ratio)


def test_planner_accuracy_fig4_sweep(benchmark, small_dataset, cluster_500,
                                     cost_parameters, bench_record, tmp_path):
    multisets = small_dataset.multisets
    planner = Planner(cost_parameters)

    def run():
        # Same configuration as the Fig. 4 sweep: the paper-calibrated
        # raw-identifier cost model with the unpruned candidate stream.
        measured = threshold_sweep(ALGORITHMS, multisets, THRESHOLD_GRID,
                                   cluster=cluster_500,
                                   sharding_threshold=DEFAULT_SHARDING_C,
                                   cost_parameters=cost_parameters,
                                   intern=False, prune_candidates=False,
                                   keep_pairs=False)
        plans = {}
        for threshold in THRESHOLD_GRID:
            spec = JoinSpec(threshold=threshold,
                            sharding_threshold=DEFAULT_SHARDING_C,
                            intern=False, prune_candidates=False)
            plans[threshold] = planner.plan(spec, multisets, cluster_500)
        return measured, plans

    measured, plans = run_once(benchmark, run)

    choices = {}
    agreement = {}
    predicted_series = {}
    ratio_series = {}
    rows = []
    for threshold in THRESHOLD_GRID:
        outcomes = measured[threshold]
        finished = {name: outcome.simulated_seconds
                    for name, outcome in outcomes.items() if outcome.finished}
        best = min(finished, key=finished.get)
        plan = plans[threshold]
        choices[threshold] = {"planned": plan.algorithm, "measured": best}
        agreement[threshold] = plan.algorithm == best
        predicted_series[threshold] = {
            candidate.algorithm: candidate.predicted_seconds
            for candidate in plan.candidates}
        chosen_ratio = (plan.predicted_seconds / finished[plan.algorithm]
                        if plan.algorithm in finished else None)
        ratio_series[threshold] = chosen_ratio
        rows.append([threshold, plan.algorithm, best,
                     "yes" if agreement[threshold] else "NO",
                     f"{plan.predicted_seconds:,.0f}",
                     f"{finished[best]:,.0f}",
                     f"{chosen_ratio:.2f}" if chosen_ratio else "-"])

    agreement_rate = sum(agreement.values()) / len(agreement)
    bench_record["choices"] = choices
    bench_record["agreement"] = agreement
    bench_record["agreement_rate"] = agreement_rate
    bench_record["predicted_seconds"] = predicted_series
    # Both sides are deterministic (cost-model outputs), so the ratios are
    # stable series the regression gate can watch within its tolerance.
    bench_record["prediction_over_measurement"] = ratio_series

    print()
    print(format_table(
        ["threshold", "planner choice", "measured best", "agree",
         "predicted s", "measured s", "pred/meas"],
        rows,
        title="Planner choice vs measured winner (Fig. 4 sweep, small "
              "dataset, 500 machines)"))
    print(f"\nAgreement: {sum(agreement.values())}/{len(agreement)} "
          f"thresholds ({agreement_rate:.0%}).")

    # On the calibrated small preset the planner must match the measured
    # winner at every threshold, and its prediction for the chosen pipeline
    # must stay within a factor of two of the measurement.
    assert agreement_rate == 1.0, choices
    for threshold, ratio in ratio_series.items():
        assert ratio is not None and 0.5 <= ratio <= 2.0, (threshold, ratio)

    # -- self-tuning: feed the measurements back and re-plan ------------------

    profile = CalibrationProfile(base=cost_parameters)
    for threshold in THRESHOLD_GRID:
        plan = plans[threshold]
        for name, outcome in measured[threshold].items():
            if not outcome.finished or not outcome.job_stats:
                continue
            try:
                candidate = plan.candidate_for(name)
            except KeyError:
                continue  # the planner ruled this candidate infeasible
            profile.observe(candidate, outcome.job_stats, cluster_500)

    calibrated_planner = Planner(cost_parameters, calibration=profile)
    calibrated_ratio_series = {}
    calibration_rows = []
    for threshold in THRESHOLD_GRID:
        spec = JoinSpec(threshold=threshold,
                        sharding_threshold=DEFAULT_SHARDING_C,
                        intern=False, prune_candidates=False)
        plan = calibrated_planner.plan(spec, multisets, cluster_500)
        finished = {name: outcome.simulated_seconds
                    for name, outcome in measured[threshold].items()
                    if outcome.finished}
        ratio = plan.predicted_seconds / finished[plan.algorithm]
        calibrated_ratio_series[threshold] = ratio
        calibration_rows.append([threshold, plan.algorithm,
                                 f"{ratio_series[threshold]:.4f}",
                                 f"{ratio:.4f}"])

    default_band = max(deviation(r) for r in ratio_series.values())
    calibrated_band = max(deviation(r)
                          for r in calibrated_ratio_series.values())

    bench_record["calibrated_prediction_over_measurement"] = (
        calibrated_ratio_series)
    bench_record["default_band"] = default_band
    bench_record["calibrated_band"] = calibrated_band
    bench_record["calibration_factors"] = {
        name: estimate.factor
        for name, estimate in profile.components.items() if estimate.count}

    print()
    print(format_table(
        ["threshold", "calibrated choice", "default pred/meas",
         "calibrated pred/meas"],
        calibration_rows,
        title=f"Self-tuning: ratio band {default_band:.4f} -> "
              f"{calibrated_band:.4f} after {profile.runs} observations"))

    # The acceptance criterion of the self-tuning loop: after observing the
    # sweep, the calibrated predictions must sit in a strictly tighter band
    # around the measurements than the default cost constants produce.
    assert calibrated_band < default_band, (calibrated_band, default_band)

    # A profile persisted and reloaded must reproduce the calibrated
    # predictions exactly — calibration survives across sessions.
    profile.save(tmp_path / "calibration.db")
    reloaded = CalibrationProfile.load(tmp_path / "calibration.db")
    assert (reloaded.calibrated_parameters()
            == profile.calibrated_parameters())
    replanner = Planner(cost_parameters, calibration=reloaded)
    for threshold in THRESHOLD_GRID:
        spec = JoinSpec(threshold=threshold,
                        sharding_threshold=DEFAULT_SHARDING_C,
                        intern=False, prune_candidates=False)
        assert (replanner.plan(spec, multisets, cluster_500).predicted_seconds
                == calibrated_planner.plan(spec, multisets,
                                           cluster_500).predicted_seconds)
