"""Planner accuracy: predicted algorithm choice vs best-by-measurement.

The engine's ``algorithm="auto"`` planner answers the paper's central
practical question — which algorithm wins for a given dataset and
threshold — from corpus statistics and the cost model alone, without
running the candidates.  This benchmark replays the Fig. 4 threshold sweep
(small dataset, 500 machines, paper calibration) twice: once *measured*
(running all four algorithms, as ``bench_fig4_threshold_sweep`` does) and
once *planned*, and records, per threshold:

* the planner's choice and the measured winner (and whether they agree);
* predicted vs measured simulated seconds for every feasible candidate
  (the prediction/measurement ratio is the planner's calibration error).

The headline series — agreement per threshold and the chosen algorithm —
is deterministic and goes through ``bench_record`` into the committed
smoke baselines, so a cost-model or planner change that flips a choice
trips ``check_regression.py``.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_SHARDING_C, THRESHOLD_GRID, run_once
from repro.analysis.experiments import threshold_sweep
from repro.analysis.reporting import format_table
from repro.engine.planner import Planner
from repro.engine.spec import PLANNABLE_ALGORITHMS, JoinSpec

ALGORITHMS = PLANNABLE_ALGORITHMS


def test_planner_accuracy_fig4_sweep(benchmark, small_dataset, cluster_500,
                                     cost_parameters, bench_record):
    multisets = small_dataset.multisets
    planner = Planner(cost_parameters)

    def run():
        # Same configuration as the Fig. 4 sweep: the paper-calibrated
        # raw-identifier cost model with the unpruned candidate stream.
        measured = threshold_sweep(ALGORITHMS, multisets, THRESHOLD_GRID,
                                   cluster=cluster_500,
                                   sharding_threshold=DEFAULT_SHARDING_C,
                                   cost_parameters=cost_parameters,
                                   intern=False, prune_candidates=False,
                                   keep_pairs=False)
        plans = {}
        for threshold in THRESHOLD_GRID:
            spec = JoinSpec(threshold=threshold,
                            sharding_threshold=DEFAULT_SHARDING_C,
                            intern=False, prune_candidates=False)
            plans[threshold] = planner.plan(spec, multisets, cluster_500)
        return measured, plans

    measured, plans = run_once(benchmark, run)

    choices = {}
    agreement = {}
    predicted_series = {}
    ratio_series = {}
    rows = []
    for threshold in THRESHOLD_GRID:
        outcomes = measured[threshold]
        finished = {name: outcome.simulated_seconds
                    for name, outcome in outcomes.items() if outcome.finished}
        best = min(finished, key=finished.get)
        plan = plans[threshold]
        choices[threshold] = {"planned": plan.algorithm, "measured": best}
        agreement[threshold] = plan.algorithm == best
        predicted_series[threshold] = {
            candidate.algorithm: candidate.predicted_seconds
            for candidate in plan.candidates}
        chosen_ratio = (plan.predicted_seconds / finished[plan.algorithm]
                        if plan.algorithm in finished else None)
        ratio_series[threshold] = chosen_ratio
        rows.append([threshold, plan.algorithm, best,
                     "yes" if agreement[threshold] else "NO",
                     f"{plan.predicted_seconds:,.0f}",
                     f"{finished[best]:,.0f}",
                     f"{chosen_ratio:.2f}" if chosen_ratio else "-"])

    agreement_rate = sum(agreement.values()) / len(agreement)
    bench_record["choices"] = choices
    bench_record["agreement"] = agreement
    bench_record["agreement_rate"] = agreement_rate
    bench_record["predicted_seconds"] = predicted_series
    # Both sides are deterministic (cost-model outputs), so the ratios are
    # stable series the regression gate can watch within its tolerance.
    bench_record["prediction_over_measurement"] = ratio_series

    print()
    print(format_table(
        ["threshold", "planner choice", "measured best", "agree",
         "predicted s", "measured s", "pred/meas"],
        rows,
        title="Planner choice vs measured winner (Fig. 4 sweep, small "
              "dataset, 500 machines)"))
    print(f"\nAgreement: {sum(agreement.values())}/{len(agreement)} "
          f"thresholds ({agreement_rate:.0%}).")

    # On the calibrated small preset the planner must match the measured
    # winner at every threshold, and its prediction for the chosen pipeline
    # must stay within a factor of two of the measurement.
    assert agreement_rate == 1.0, choices
    for threshold, ratio in ratio_series.items():
        assert ratio is not None and 0.5 <= ratio <= 2.0, (threshold, ratio)
