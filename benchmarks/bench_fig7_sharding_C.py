"""Figure 7: Sharding run time vs the parameter C on the realistic dataset.

Expected shape (paper section 7.3): as C grows, Sharding1 gets cheaper
(fewer multisets exceed the threshold, so fewer table entries are emitted)
while Sharding2 gets more expensive (more multisets are aggregated on the
fly by a single reducer each); the total stays roughly flat, with a shallow
minimum around C ~ 1000, and larger C values reduce the memory footprint of
the lookup table the Sharding2 mappers must hold.
"""

from __future__ import annotations

from benchmarks.conftest import SHARDING_C_GRID, base_cluster, run_once
from repro.analysis.experiments import sharding_parameter_sweep
from repro.analysis.reporting import format_table


def test_fig7_sharding_parameter_sweep(benchmark, realistic_dataset, cost_parameters,
                                       bench_record):
    def run():
        return sharding_parameter_sweep(realistic_dataset.multisets, SHARDING_C_GRID,
                                        base_cluster(), threshold=0.5,
                                        cost_parameters=cost_parameters)

    sweep = run_once(benchmark, run)
    bench_record["sweep"] = sweep
    rows = []
    for parameter in sorted(sweep):
        row = sweep[parameter]
        rows.append([parameter,
                     f"{row['sharding1_seconds']:,.0f}s",
                     f"{row['sharding2_seconds']:,.0f}s",
                     f"{row['joining_seconds']:,.0f}s",
                     f"{row['total_seconds']:,.0f}s"])
    print()
    print(format_table(["C", "Sharding1", "Sharding2", "joining total", "pipeline total"],
                       rows,
                       title="Fig. 7: Sharding run time vs the parameter C "
                             "(realistic dataset, t = 0.5)"))

    parameters = sorted(sweep)
    smallest, largest = parameters[0], parameters[-1]
    # Results are identical regardless of C.
    pair_counts = {sweep[parameter]["num_pairs"] for parameter in parameters}
    assert len(pair_counts) == 1
    # Sharding1 work shrinks as C grows (fewer table entries are emitted).
    assert sweep[largest]["sharding1_seconds"] <= sweep[smallest]["sharding1_seconds"] + 1e-6
    assert all(sweep[parameters[i + 1]]["sharding1_seconds"]
               <= sweep[parameters[i]]["sharding1_seconds"] + 1e-6
               for i in range(len(parameters) - 1))
    # Once C exceeds every underlying cardinality the sharded table is empty
    # and all the on-the-fly aggregation lands on single reducers, so the
    # Sharding2 step at the largest C is at least as expensive as at the
    # sweet spot in the middle of the sweep (the paper's upward trend).
    middle = parameters[len(parameters) // 2]
    assert sweep[largest]["sharding2_seconds"] >= sweep[middle]["sharding2_seconds"] - 1e-6
    # The total stays within a modest band across three orders of magnitude
    # of C — the paper's headline insensitivity result.
    totals = [sweep[parameter]["total_seconds"] for parameter in parameters]
    assert max(totals) <= 1.5 * min(totals)
