"""Availability under replica failures: QPS and error rate vs kills.

Two experiments over the replicated serving tier (PR 8), both driving the
service directly from concurrent threads with *injected* per-replica-call
latency (a seeded :class:`~repro.resilience.faults.FaultPolicy`), so the
replica lock — not Python execution — is the bottleneck and the effect of
replication is visible on one machine:

* **read scaling** — a Zipf-skewed (hot-key) threshold workload replayed
  against fleets of replication factor 1, 2 and 4.  Reads spread over
  replicas round-robin, each paying the injected latency under its
  replica's lock, so sustainable QPS grows with the replica count;
* **availability** — a replication-factor-2 fleet replayed while replicas
  die: with one replica killed per shard (``f = 1``) the error rate stays
  exactly zero and answers remain bit-identical to an unreplicated oracle;
  killing *both* replicas of a shard surfaces clean
  :class:`~repro.core.exceptions.ReplicaUnavailableError` answers instead
  of wrong ones, and recovery restores error-free exact serving.
"""

from __future__ import annotations

import os
import threading
import time

from benchmarks.conftest import SMOKE, run_once
from repro.analysis.reporting import format_table
from repro.core.exceptions import ReproError
from repro.datasets.workload import QueryWorkloadConfig, generate_query_workload
from repro.resilience import FaultPolicy, ReplicatedSimilarityService
from repro.serving.api import QueryRequest
from repro.serving.service import ShardedSimilarityService

THRESHOLD = 0.5
NUM_SHARDS = 2
NUM_THREADS = 8
NUM_QUERIES = 64 if SMOKE else 160
#: Injected latency per replica call; large against the query's own cost,
#: so throughput is bounded by replica locks and scales with replication.
INJECTED_LATENCY = 0.002 if SMOKE else 0.004


def make_fleet(multisets, replication_factor: int,
               latency: float = INJECTED_LATENCY):
    """A replicated fleet with seeded injected latency on every replica."""
    service = ReplicatedSimilarityService(
        "ruzicka", NUM_SHARDS, replication_factor=replication_factor,
        fault_policy_factory=lambda shard, replica: FaultPolicy(
            seed=shard * 97 + replica, latency_seconds=latency))
    service.bulk_load(multisets)
    return service


def replay(service, queries) -> dict[str, float]:
    """Replay the workload from concurrent threads; count errors cleanly."""
    requests = [QueryRequest.threshold(query, THRESHOLD)
                for query in queries]
    matches = [0] * NUM_THREADS
    errors = [0] * NUM_THREADS

    def worker(thread_index: int) -> None:
        for request_index in range(thread_index, len(requests), NUM_THREADS):
            try:
                matches[thread_index] += len(
                    service.query(requests[request_index]))
            except ReproError:
                errors[thread_index] += 1

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(NUM_THREADS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "qps": len(requests) / elapsed if elapsed > 0 else float("inf"),
        "total_matches": sum(matches),
        "errors": sum(errors),
        "error_rate": sum(errors) / len(requests),
    }


def hot_key_workload(multisets):
    return generate_query_workload(
        multisets,
        QueryWorkloadConfig(num_queries=NUM_QUERIES, zipf_exponent=1.3,
                            seed=2012))


def test_read_qps_scales_with_replication(benchmark, small_dataset,
                                          bench_record):
    multisets = small_dataset.multisets
    queries = hot_key_workload(multisets)
    oracle = ShardedSimilarityService("ruzicka", NUM_SHARDS)
    oracle.bulk_load(multisets)
    expected_matches = sum(
        len(oracle.query(QueryRequest.threshold(query, THRESHOLD)))
        for query in queries)

    def run():
        results = []
        for replication_factor in (1, 2, 4):
            fleet = make_fleet(multisets, replication_factor)
            outcome = replay(fleet, queries)
            outcome["replication_factor"] = replication_factor
            results.append(outcome)
        return results

    results = run_once(benchmark, run)
    bench_record["num_queries"] = NUM_QUERIES
    bench_record["injected_latency_seconds"] = INJECTED_LATENCY
    bench_record["fleets"] = results
    print()
    print(format_table(
        ["replication", "queries/sec", "errors", "matches"],
        [[row["replication_factor"], f"{row['qps']:,.0f}",
          row["errors"], row["total_matches"]] for row in results],
        title=f"Read QPS vs replication factor: {NUM_QUERIES} Zipf-skewed "
              f"queries, {INJECTED_LATENCY * 1000:.0f}ms injected latency "
              f"per replica call"))

    for row in results:
        # Replication is invisible to correctness: zero errors, and the
        # answer volume matches the unreplicated oracle bit-for-bit.
        assert row["errors"] == 0
        assert row["total_matches"] == expected_matches
    if not SMOKE:
        # With the replica lock as the bottleneck, doubling the replicas
        # must buy real throughput (well under 2x is fine; none is not).
        by_rf = {row["replication_factor"]: row["qps"] for row in results}
        assert by_rf[2] > 1.3 * by_rf[1]
        assert by_rf[4] > by_rf[1]


def test_availability_under_replica_failures(benchmark, small_dataset,
                                             bench_record, tmp_path):
    multisets = small_dataset.multisets
    queries = hot_key_workload(multisets)
    oracle = ShardedSimilarityService("ruzicka", NUM_SHARDS)
    oracle.bulk_load(multisets)
    expected_matches = sum(
        len(oracle.query(QueryRequest.threshold(query, THRESHOLD)))
        for query in queries)

    def run():
        fleet = make_fleet(multisets, 2)
        snapshot_dir = str(tmp_path / "snapshot")
        fleet.persist(snapshot_dir)
        phases = []

        def phase(name, killed_per_shard):
            outcome = replay(fleet, queries)
            outcome["phase"] = name
            outcome["killed_per_shard"] = killed_per_shard
            phases.append(outcome)

        phase("healthy (f=0)", 0)
        for shard in range(NUM_SHARDS):
            fleet.kill_replica(shard, shard % 2)
        phase("one replica killed per shard (f=1)", 1)
        # Total outage of shard 0: both replicas down.  Fan-out queries
        # now fail cleanly instead of answering wrong.
        fleet.kill_replica(0, (0 + 1) % 2)
        phase("shard 0 fully down", 2)
        # A fully-down shard has no peer left: its first replica rebuilds
        # from durable storage, after which the rest recover peer-to-peer.
        fleet.recover_replica(0, 0,
                              source=os.path.join(snapshot_dir,
                                                  "shard0000.sqlite"))
        fleet.recover_replica(0, 1)
        fleet.recover_replica(1, 1)
        phase("recovered", 0)
        return phases

    phases = run_once(benchmark, run)
    bench_record["num_queries"] = NUM_QUERIES
    bench_record["injected_latency_seconds"] = INJECTED_LATENCY
    bench_record["phases"] = phases
    print()
    print(format_table(
        ["phase", "killed/shard", "queries/sec", "error rate", "matches"],
        [[row["phase"], row["killed_per_shard"], f"{row['qps']:,.0f}",
          f"{row['error_rate']:.0%}", row["total_matches"]]
         for row in phases],
        title=f"Availability vs killed replicas: RF=2, {NUM_SHARDS} shards, "
              f"{NUM_QUERIES} queries per phase"))

    by_phase = {row["phase"]: row for row in phases}
    # f <= 1: zero errors and bit-exact parity with the unreplicated oracle.
    for name in ("healthy (f=0)", "one replica killed per shard (f=1)",
                 "recovered"):
        assert by_phase[name]["errors"] == 0
        assert by_phase[name]["total_matches"] == expected_matches
    # A full shard outage fails every fan-out query cleanly (no partial or
    # wrong answers), and the process survives to recover.
    outage = by_phase["shard 0 fully down"]
    assert outage["error_rate"] == 1.0
    assert outage["total_matches"] == 0
