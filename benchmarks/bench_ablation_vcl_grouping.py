"""Ablation: VCL super-element grouping.

Section 6.2 reports that grouping elements into super-elements (to shrink
the alphabet VCL mappers must hold in memory) "was shown to consistently
introduce more overhead than savings due to the superfluous pairs", leading
the VCL authors to recommend one element per group.  This ablation compares
VCL without grouping against two grouping granularities and reports the
number of candidate pairs the kernel reducers had to verify.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.exceptions import MemoryBudgetExceeded
from repro.vcl.driver import VCLConfig, VCLJoin

THRESHOLD = 0.5


def test_ablation_vcl_grouping(benchmark, small_dataset, cluster_500, cost_parameters,
                               bench_record):
    multisets = small_dataset.multisets

    def run():
        variants = {
            "no grouping": VCLConfig(threshold=THRESHOLD),
            "256 super-elements": VCLConfig(threshold=THRESHOLD, super_element_groups=256),
            "64 super-elements": VCLConfig(threshold=THRESHOLD, super_element_groups=64),
        }
        outcomes = {}
        for name, config in variants.items():
            try:
                outcomes[name] = VCLJoin(config, cluster=cluster_500,
                                         cost_parameters=cost_parameters).run(multisets)
            except MemoryBudgetExceeded as error:
                outcomes[name] = error
        return outcomes

    outcomes = run_once(benchmark, run)
    bench_record["variants"] = {
        name: ({"status": "out_of_memory"}
               if isinstance(result, MemoryBudgetExceeded)
               else {"pairs_verified": result.counters().get("vcl/pairs_verified", 0),
                     "simulated_seconds": result.simulated_seconds,
                     "num_pairs": len(result.pairs)})
        for name, result in outcomes.items()}
    rows = []
    for name, result in outcomes.items():
        if isinstance(result, MemoryBudgetExceeded):
            rows.append([name, "-", "-", "DNF (reducer group exceeds memory)", "-"])
            continue
        counters = result.counters()
        rows.append([name, counters.get("vcl/pairs_verified", 0),
                     counters.get("vcl/duplicate_results", 0),
                     f"{result.simulated_seconds:,.0f}s", len(result.pairs)])
    print()
    print(format_table(["variant", "candidate pairs verified", "duplicate results",
                        "simulated run time", "pairs"], rows,
                       title="Ablation: VCL super-element grouping "
                             f"(small dataset, t = {THRESHOLD})"))

    plain = outcomes["no grouping"]
    assert not isinstance(plain, MemoryBudgetExceeded)
    grouped = [outcomes["256 super-elements"], outcomes["64 super-elements"]]
    for result in grouped:
        if isinstance(result, MemoryBudgetExceeded):
            # Coarse grouping concentrates whole multisets on few reducers —
            # an even harsher overhead than the superfluous pairs the paper
            # measured.
            continue
        # Grouping never changes the final result (superfluous pairs are
        # weeded out by exact verification) but verifies at least as many
        # candidates as the ungrouped run.
        assert {p.pair for p in result.pairs} == {p.pair for p in plain.pairs}
        assert (result.counters()["vcl/pairs_verified"]
                >= plain.counters()["vcl/pairs_verified"])
